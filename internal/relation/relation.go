// Package relation implements relational instances and database states with
// constant values: tuples, projection, natural join, and construction of
// states as projections of universal instances.
//
// Values are integers; the optional Dict maps them to display names so the
// paper's examples (CS402, Smith, …) read naturally.
//
// Storage is column-major: an instance keeps one contiguous []Value arena
// per attribute, a row is an arena offset (its "slot"), and deletes push
// slots onto a free list for reuse instead of moving rows. Tuple remains
// the row-shaped interchange type — callers Add and probe with tuples, and
// materialize them from slots on demand — but scans, joins, and checkpoint
// encoding stream whole columns through cache without chasing per-row
// pointers.
package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"indep/internal/attrset"
	"indep/internal/hashkey"
	"indep/internal/schema"
)

// Value is a constant domain element.
type Value int64

// Dict maps values to human-readable names. The zero value is usable.
type Dict struct {
	names []string
	bound []bool // whether names[v] is a real binding (Define leaves gaps)
	index map[string]Value
}

// Value interns name and returns its value.
func (d *Dict) Value(name string) Value {
	if d.index == nil {
		d.index = make(map[string]Value)
	}
	if v, ok := d.index[name]; ok {
		return v
	}
	v := Value(len(d.names))
	d.names = append(d.names, name)
	d.bound = append(d.bound, true)
	d.index[name] = v
	return v
}

// Lookup returns the value of an already-interned name without interning
// it. Query selection uses it: a name the dictionary has never seen cannot
// appear in any tuple, so the dictionary does not grow on misses.
func (d *Dict) Lookup(name string) (Value, bool) {
	if d == nil || d.index == nil {
		return 0, false
	}
	v, ok := d.index[name]
	return v, ok
}

// Name returns the display name of v, or its numeral if unnamed.
func (d *Dict) Name(v Value) string {
	if d != nil && v >= 0 && int(v) < len(d.names) && d.bound[v] {
		return d.names[v]
	}
	return fmt.Sprintf("%d", int64(v))
}

// Define binds v to name directly, growing the name table as needed. It lets
// callers that allocate values themselves (e.g. a sharded concurrent dict)
// materialize a plain Dict for display; values in the gaps render as
// numerals.
func (d *Dict) Define(v Value, name string) {
	if v < 0 {
		panic("relation: Define with negative value")
	}
	if d.index == nil {
		d.index = make(map[string]Value)
	}
	for int(v) >= len(d.names) {
		d.names = append(d.names, "")
		d.bound = append(d.bound, false)
	}
	d.names[v] = name
	d.bound[v] = true
	d.index[name] = v
}

// Each calls f for every bound (value, name) pair in ascending value
// order. Checkpoint serialization relies on the ordering: restoring the
// pairs in Each order reproduces the allocation order of the concurrent
// dictionary's shards.
func (d *Dict) Each(f func(v Value, name string)) {
	if d == nil {
		return
	}
	for i, name := range d.names {
		if d.bound[i] {
			f(Value(i), name)
		}
	}
}

// Tuple is a row of an instance. Its values are ordered by ascending
// attribute index of the owning instance's scheme.
type Tuple []Value

// hash is the tuple's 64-bit content key. Indexes bucket by it and resolve
// collisions by comparing values, so dedup never allocates a string key.
func (t Tuple) hash() uint64 { return hashkey.Int64s(t) }

// Equal reports value equality of two tuples.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i, v := range t {
		if v != o[i] {
			return false
		}
	}
	return true
}

// HashCols hashes the tuple's values at the given column positions with
// the same fold as the full-tuple hash, so any index layer keyed over a
// column subset (the instance's own secondary indexes, the maintenance
// guard's FD indexes) stays fold-compatible with the relation layer.
func HashCols(t Tuple, cols []int) uint64 {
	h := hashkey.Init
	for _, c := range cols {
		h = hashkey.Mix(h, uint64(t[c]))
	}
	return h
}

// AgreeAt reports whether two tuples of the same scheme carry equal values
// at the given column positions — the verification step for any bucket
// keyed by HashCols.
func AgreeAt(a, b Tuple, cols []int) bool {
	for _, c := range cols {
		if a[c] != b[c] {
			return false
		}
	}
	return true
}

// Clone copies the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Instance is a set of tuples over a relation scheme, stored column-major:
// cols[c][s] is the value of column c in row slot s. All column arenas have
// equal length; live[s] marks occupied slots, and free holds vacated slots
// for reuse, so a slot number is stable for the lifetime of its row.
//
// The primary index buckets rows by their 64-bit content hash: pos holds
// the first slot seen for a hash, over the (rare) extra slots when distinct
// rows collide. Membership probes hash the tuple and compare values column
// by column — no string key is ever built, so Has and duplicate Adds are
// allocation-free; a fresh Add writes straight into the arenas with no
// per-row clone.
type Instance struct {
	Attrs attrset.Set
	cols  [][]Value          // one arena per column; equal lengths = slot count
	live  []bool             // live[s]: slot s holds a current row
	free  []int32            // vacated slots, reused LIFO by Add
	n     int                // live row count
	pos   map[uint64]int32   // row hash → first slot
	over  map[uint64][]int32 // additional slots on hash collision

	// secondary holds lazily built hash indexes over column subsets, keyed
	// by the column-position list (see MatchingRows), plus the cached list
	// of live slots for full scans. Guarded by secMu (read-locked on
	// probes, write-locked only to build) and dropped on every mutation, so
	// it only persists — and amortizes — on immutable instances such as
	// engine snapshots.
	secMu     sync.RWMutex
	secondary map[uint64][]*colIndex
	liveRows  []int32
}

// NewInstance creates an empty instance over the given scheme.
func NewInstance(attrs attrset.Set) *Instance {
	return &Instance{
		Attrs: attrs,
		cols:  make([][]Value, attrs.Len()),
		pos:   make(map[uint64]int32),
	}
}

// Len returns the number of (live) tuples.
func (in *Instance) Len() int { return in.n }

// Width returns the arity of the instance.
func (in *Instance) Width() int { return in.Attrs.Len() }

// NumSlots returns the arena length: live rows plus vacated slots. Slot
// numbers range over [0, NumSlots()).
func (in *Instance) NumSlots() int { return len(in.live) }

// Alive reports whether slot s holds a current row.
func (in *Instance) Alive(s int32) bool { return in.live[s] }

// At returns the value of column c in row slot s. The slot must be alive.
func (in *Instance) At(s int32, c int) Value { return in.cols[c][s] }

// Col returns column c's raw arena, indexed by slot. It includes vacated
// slots (stale values); callers iterating it must consult LiveMask or
// LiveRows. The slice is the instance's own storage — read-only.
func (in *Instance) Col(c int) []Value { return in.cols[c] }

// LiveMask returns the per-slot liveness mask, parallel to every Col
// arena. Read-only.
func (in *Instance) LiveMask() []bool { return in.live }

// AppendRow appends row slot s's values to dst and returns it — the cheap
// row view: a caller-owned scratch tuple refilled per slot, so iterating a
// million rows materializes zero per-row objects.
func (in *Instance) AppendRow(dst Tuple, s int32) Tuple {
	for _, col := range in.cols {
		dst = append(dst, col[s])
	}
	return dst
}

// Rows materializes every live row as a freshly allocated tuple, in slot
// order. The result is safe to retain and mutate; intended for cold paths
// (rendering, diffs, tests) — hot paths iterate slots or columns directly.
func (in *Instance) Rows() []Tuple {
	out := make([]Tuple, 0, in.n)
	backing := make([]Value, 0, in.n*in.Width())
	for s, alive := range in.live {
		if !alive {
			continue
		}
		start := len(backing)
		backing = in.AppendRow(backing, int32(s))
		out = append(out, Tuple(backing[start:len(backing):len(backing)]))
	}
	return out
}

// LiveRows returns the slots of every live row in ascending order. The
// first call after a mutation scans the mask (O(slots)); later calls return
// a cached list, so full scans on immutable snapshots are allocation-free.
// Read-only. Safe for concurrent use by readers.
func (in *Instance) LiveRows() []int32 {
	in.secMu.RLock()
	rs := in.liveRows
	in.secMu.RUnlock()
	if rs != nil {
		return rs
	}
	in.secMu.Lock()
	defer in.secMu.Unlock()
	if in.liveRows == nil {
		rs := make([]int32, 0, in.n)
		for s, alive := range in.live {
			if alive {
				rs = append(rs, int32(s))
			}
		}
		in.liveRows = rs
	}
	return in.liveRows
}

// rowHash hashes row slot s with the same fold as Tuple.hash, so the
// primary index accepts probes from either representation.
func (in *Instance) rowHash(s int32) uint64 {
	h := hashkey.Init
	for _, col := range in.cols {
		h = hashkey.Mix(h, uint64(col[s]))
	}
	return h
}

// hashRowCols hashes row slot s at the given column positions,
// fold-compatible with HashCols.
func (in *Instance) hashRowCols(s int32, cols []int) uint64 {
	h := hashkey.Init
	for _, c := range cols {
		h = hashkey.Mix(h, uint64(in.cols[c][s]))
	}
	return h
}

// rowEqual reports whether row slot s carries exactly t's values.
func (in *Instance) rowEqual(s int32, t Tuple) bool {
	if len(t) != len(in.cols) {
		return false
	}
	for c, v := range t {
		if in.cols[c][s] != v {
			return false
		}
	}
	return true
}

// find returns the slot of t, or -1.
func (in *Instance) find(t Tuple) int32 {
	h := t.hash()
	p, ok := in.pos[h]
	if !ok {
		return -1
	}
	if in.rowEqual(p, t) {
		return p
	}
	for _, q := range in.over[h] {
		if in.rowEqual(q, t) {
			return q
		}
	}
	return -1
}

// indexAdd records slot s for a row hashing to h.
func (in *Instance) indexAdd(h uint64, s int32) {
	if _, ok := in.pos[h]; !ok {
		in.pos[h] = s
		return
	}
	if in.over == nil {
		in.over = make(map[uint64][]int32)
	}
	in.over[h] = append(in.over[h], s)
}

// indexRemove forgets slot s for a row hashing to h.
func (in *Instance) indexRemove(h uint64, s int32) {
	if in.pos[h] == s {
		if ov := in.over[h]; len(ov) > 0 {
			in.pos[h] = ov[len(ov)-1]
			in.shrinkOver(h, len(ov)-1)
		} else {
			delete(in.pos, h)
		}
		return
	}
	for j, q := range in.over[h] {
		if q == s {
			ov := in.over[h]
			ov[j] = ov[len(ov)-1]
			in.shrinkOver(h, len(ov)-1)
			return
		}
	}
}

func (in *Instance) shrinkOver(h uint64, n int) {
	if n == 0 {
		delete(in.over, h)
	} else {
		in.over[h] = in.over[h][:n]
	}
}

// invalidateSecondary drops the lazy match indexes and the live-slot cache;
// mutations call it so a stale index can never answer a probe.
func (in *Instance) invalidateSecondary() {
	if in.secondary == nil && in.liveRows == nil {
		return
	}
	in.secMu.Lock()
	in.secondary = nil
	in.liveRows = nil
	in.secMu.Unlock()
}

// colIndex is a lazily built hash index of the instance's rows over one
// column subset: buckets maps the hash of a row's values at cols to the
// slots carrying them. Distinct value vectors can share a bucket (64-bit
// hash collisions), so probes verify the values before trusting a bucket.
type colIndex struct {
	cols    []int
	buckets map[uint64][]int32
}

// matchesRow reports whether row slot s agrees with want on the column
// positions.
func (in *Instance) matchesRow(s int32, cols []int, want []Value) bool {
	for i, c := range cols {
		if in.cols[c][s] != want[i] {
			return false
		}
	}
	return true
}

// MatchingRows returns the slots of rows agreeing with want on the given
// column positions (in the instance's column order). With no columns it
// returns every live slot. The first probe for a column set builds a hash
// index over it (O(n)); later probes are O(1) plus the match count and
// allocation-free unless a hash collision forces a filtered copy. Indexes
// are dropped on mutation, so the amortization pays off on immutable
// instances — which is exactly what the window-query evaluator probes: its
// per-tuple extension joins against an engine snapshot would otherwise
// rescan the joined relation for every tuple. Safe for concurrent use by
// readers. The result is read-only.
func (in *Instance) MatchingRows(cols []int, want []Value) []int32 {
	if len(cols) == 0 {
		return in.LiveRows()
	}
	ck := hashkey.Ints(cols)
	var idx *colIndex
	in.secMu.RLock()
	for _, ci := range in.secondary[ck] {
		if intsEqual(ci.cols, cols) {
			idx = ci
			break
		}
	}
	in.secMu.RUnlock()
	if idx == nil {
		in.secMu.Lock()
		if in.secondary == nil {
			in.secondary = make(map[uint64][]*colIndex)
		}
		for _, ci := range in.secondary[ck] { // raced with another builder
			if intsEqual(ci.cols, cols) {
				idx = ci
				break
			}
		}
		if idx == nil {
			idx = &colIndex{
				cols:    append([]int(nil), cols...),
				buckets: make(map[uint64][]int32, in.n),
			}
			for s, alive := range in.live {
				if !alive {
					continue
				}
				h := in.hashRowCols(int32(s), cols)
				idx.buckets[h] = append(idx.buckets[h], int32(s))
			}
			in.secondary[ck] = append(in.secondary[ck], idx)
		}
		in.secMu.Unlock()
	}
	cands := idx.buckets[hashkey.Int64s(want)]
	n := 0
	for _, s := range cands {
		if in.matchesRow(s, cols, want) {
			n++
		}
	}
	if n == len(cands) {
		return cands
	}
	out := make([]int32, 0, n)
	for _, s := range cands {
		if in.matchesRow(s, cols, want) {
			out = append(out, s)
		}
	}
	return out
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// Add inserts a tuple (deduplicating). It panics if the arity is wrong,
// since that is always a programming error. The values are copied into the
// column arenas — the caller keeps ownership of t and may reuse it.
// Duplicate adds are allocation-free; a fresh add costs only amortized
// arena growth.
func (in *Instance) Add(t Tuple) bool {
	if len(t) != in.Width() {
		panic(fmt.Sprintf("relation: tuple arity %d does not match scheme arity %d", len(t), in.Width()))
	}
	if in.find(t) >= 0 {
		return false
	}
	in.invalidateSecondary()
	var s int32
	if k := len(in.free); k > 0 {
		s = in.free[k-1]
		in.free = in.free[:k-1]
		for c, v := range t {
			in.cols[c][s] = v
		}
		in.live[s] = true
	} else {
		s = int32(len(in.live))
		for c, v := range t {
			in.cols[c] = append(in.cols[c], v)
		}
		in.live = append(in.live, true)
	}
	in.n++
	in.indexAdd(t.hash(), s)
	return true
}

// Remove deletes a tuple, reporting whether it was present. The vacated
// slot keeps its number and goes on the free list for the next Add, so
// other rows' slots are never disturbed.
func (in *Instance) Remove(t Tuple) bool {
	s := in.find(t)
	if s < 0 {
		return false
	}
	in.invalidateSecondary()
	in.indexRemove(t.hash(), s)
	in.live[s] = false
	in.free = append(in.free, s)
	in.n--
	return true
}

// Has reports whether the tuple is present. It never allocates.
func (in *Instance) Has(t Tuple) bool {
	return in.find(t) >= 0
}

// Clone deep-copies the instance. Columns copy as whole arenas (memmove,
// not per-row re-insertion), which is what makes engine snapshots cheap.
func (in *Instance) Clone() *Instance {
	out := &Instance{Attrs: in.Attrs, cols: make([][]Value, len(in.cols)), n: in.n}
	for c := range in.cols {
		out.cols[c] = append([]Value(nil), in.cols[c]...)
	}
	out.live = append([]bool(nil), in.live...)
	out.free = append([]int32(nil), in.free...)
	out.pos = make(map[uint64]int32, len(in.pos))
	for h, s := range in.pos {
		out.pos[h] = s
	}
	if len(in.over) > 0 {
		out.over = make(map[uint64][]int32, len(in.over))
		for h, v := range in.over {
			out.over[h] = append([]int32(nil), v...)
		}
	}
	return out
}

// SnapshotCols returns the live rows in column-major form plus the row
// count: one slice per column, each holding exactly the live rows in slot
// order. With no vacated slots (the common case for snapshot encoding) the
// returned slices alias the arenas directly — zero copies; otherwise the
// columns are compacted into fresh slices. Read-only.
func (in *Instance) SnapshotCols() ([][]Value, int) {
	if len(in.free) == 0 {
		return in.cols, in.n
	}
	out := make([][]Value, len(in.cols))
	for c := range in.cols {
		cc := make([]Value, 0, in.n)
		col := in.cols[c]
		for s, alive := range in.live {
			if alive {
				cc = append(cc, col[s])
			}
		}
		out[c] = cc
	}
	return out, in.n
}

// AddCols bulk-loads rows given column-major: cols[c][r] is row r's value
// in column c (the checkpoint decode shape). Rows are deduplicated through
// the normal Add path.
func (in *Instance) AddCols(cols [][]Value, rows int) {
	scratch := make(Tuple, len(cols))
	for r := 0; r < rows; r++ {
		for c := range cols {
			scratch[c] = cols[c][r]
		}
		in.Add(scratch)
	}
}

// ProjectionCols returns, for each attribute of sub (ascending), its
// column position within the scheme attrs (ascending order) — the shared
// projection/join column map; the query layer uses it too, so projection
// semantics cannot diverge between layers.
func ProjectionCols(attrs, sub attrset.Set) []int {
	cols := attrs.Attrs()
	colAt := make(map[int]int, len(cols))
	for i, a := range cols {
		colAt[a] = i
	}
	subAttrs := sub.Attrs()
	out := make([]int, len(subAttrs))
	for i, a := range subAttrs {
		out[i] = colAt[a]
	}
	return out
}

// Project returns π_sub(in). sub must be a subset of the instance scheme.
func (in *Instance) Project(sub attrset.Set) *Instance {
	if !sub.SubsetOf(in.Attrs) {
		panic("relation: projection target not a subset of the scheme")
	}
	cols := ProjectionCols(in.Attrs, sub)
	out := NewInstance(sub)
	p := make(Tuple, len(cols))
	for s, alive := range in.live {
		if !alive {
			continue
		}
		for i, c := range cols {
			p[i] = in.cols[c][s]
		}
		out.Add(p)
	}
	return out
}

// agreeRows reports whether row sa of a and row sb of b carry the same
// values at the paired column positions — the natural-join condition
// itself, so hash buckets verified with it can never admit a false match.
func agreeRows(a *Instance, sa int32, aCols []int, b *Instance, sb int32, bCols []int) bool {
	for i, c := range aCols {
		if a.cols[c][sa] != b.cols[bCols[i]][sb] {
			return false
		}
	}
	return true
}

// Join returns the natural join of two instances.
func Join(a, b *Instance) *Instance {
	common := a.Attrs.Intersect(b.Attrs)
	aCols := ProjectionCols(a.Attrs, common)
	bCols := ProjectionCols(b.Attrs, common)
	// Bucket b by the hash of its common-attribute values; probes verify
	// the join condition directly, so collisions cost a comparison, never
	// a wrong row.
	byKey := make(map[uint64][]int32, b.n)
	for s, alive := range b.live {
		if !alive {
			continue
		}
		h := b.hashRowCols(int32(s), bCols)
		byKey[h] = append(byKey[h], int32(s))
	}
	outAttrs := a.Attrs.Union(b.Attrs)
	out := NewInstance(outAttrs)
	outCols := outAttrs.Attrs()
	aIdx := make(map[int]int)
	for i, at := range a.Attrs.Attrs() {
		aIdx[at] = i
	}
	bIdx := make(map[int]int)
	for i, at := range b.Attrs.Attrs() {
		bIdx[at] = i
	}
	joined := make(Tuple, len(outCols))
	for sa, alive := range a.live {
		if !alive {
			continue
		}
		for _, sb := range byKey[a.hashRowCols(int32(sa), aCols)] {
			if !agreeRows(a, int32(sa), aCols, b, sb, bCols) {
				continue
			}
			for i, at := range outCols {
				if j, ok := aIdx[at]; ok {
					joined[i] = a.cols[j][sa]
				} else {
					joined[i] = b.cols[bIdx[at]][sb]
				}
			}
			out.Add(joined)
		}
	}
	return out
}

// Semijoin returns the tuples of a that join with some tuple of b.
func Semijoin(a, b *Instance) *Instance {
	common := a.Attrs.Intersect(b.Attrs)
	bCols := ProjectionCols(b.Attrs, common)
	bKeys := make(map[uint64][]int32, b.n)
	for s, alive := range b.live {
		if !alive {
			continue
		}
		h := b.hashRowCols(int32(s), bCols)
		bKeys[h] = append(bKeys[h], int32(s))
	}
	aCols := ProjectionCols(a.Attrs, common)
	out := NewInstance(a.Attrs)
	var scratch Tuple
	for sa, alive := range a.live {
		if !alive {
			continue
		}
		for _, sb := range bKeys[a.hashRowCols(int32(sa), aCols)] {
			if agreeRows(a, int32(sa), aCols, b, sb, bCols) {
				scratch = a.AppendRow(scratch[:0], int32(sa))
				out.Add(scratch)
				break
			}
		}
	}
	return out
}

// State is a database state: one instance per scheme of a database schema.
type State struct {
	Schema *schema.Schema
	Insts  []*Instance
	Dict   *Dict // optional display dictionary
}

// NewState creates a state with empty instances for every scheme.
func NewState(s *schema.Schema) *State {
	st := &State{Schema: s, Insts: make([]*Instance, len(s.Rels)), Dict: &Dict{}}
	for i, r := range s.Rels {
		st.Insts[i] = NewInstance(r.Attrs)
	}
	return st
}

// Clone deep-copies the state (sharing the schema and dictionary).
func (st *State) Clone() *State {
	out := &State{Schema: st.Schema, Insts: make([]*Instance, len(st.Insts)), Dict: st.Dict}
	for i, in := range st.Insts {
		out.Insts[i] = in.Clone()
	}
	return out
}

// Add inserts a tuple into the named scheme's instance.
func (st *State) Add(scheme string, t Tuple) {
	i := st.Schema.IndexOf(scheme)
	if i < 0 {
		panic("relation: unknown scheme " + scheme)
	}
	st.Insts[i].Add(t)
}

// AddNamed inserts a tuple given as attribute-name → value-name pairs, using
// the state's dictionary. All attributes of the scheme must be present.
func (st *State) AddNamed(scheme string, vals map[string]string) {
	i := st.Schema.IndexOf(scheme)
	if i < 0 {
		panic("relation: unknown scheme " + scheme)
	}
	attrs := st.Schema.Attrs(i).Attrs()
	t := make(Tuple, len(attrs))
	for j, a := range attrs {
		name := st.Schema.U.Name(a)
		v, ok := vals[name]
		if !ok {
			panic("relation: missing value for attribute " + name)
		}
		t[j] = st.Dict.Value(v)
	}
	st.Insts[i].Add(t)
}

// TupleCount returns the total number of tuples in the state.
func (st *State) TupleCount() int {
	n := 0
	for _, in := range st.Insts {
		n += in.Len()
	}
	return n
}

// Universal is an instance over the full universe.
type Universal = Instance

// ProjectOnto builds the state π_D(I) from a universal instance.
func ProjectOnto(s *schema.Schema, universal *Instance) *State {
	st := NewState(s)
	for i, r := range s.Rels {
		st.Insts[i] = universal.Project(r.Attrs)
	}
	return st
}

// JoinAll computes the natural join of all instances of the state (*p in the
// paper's notation). Instances are joined in scheme order; the empty state
// joins to an empty universal instance.
func (st *State) JoinAll() *Instance {
	var acc *Instance
	for _, in := range st.Insts {
		if acc == nil {
			acc = in.Clone()
			continue
		}
		acc = Join(acc, in)
	}
	if acc == nil {
		acc = NewInstance(st.Schema.U.All())
	}
	return acc
}

// JoinConsistent reports whether the state is the set of projections of a
// single universal instance, i.e. π_{R_i}(*p) = r_i for every scheme.
func (st *State) JoinConsistent() bool {
	j := st.JoinAll()
	if j.Attrs != st.Schema.U.All() {
		return false
	}
	var scratch Tuple
	for _, in := range st.Insts {
		proj := j.Project(in.Attrs)
		if proj.Len() != in.Len() {
			return false
		}
		for s, alive := range in.live {
			if !alive {
				continue
			}
			scratch = in.AppendRow(scratch[:0], int32(s))
			if !proj.Has(scratch) {
				return false
			}
		}
	}
	return true
}

// String renders the state for debugging, one relation per line.
func (st *State) String() string {
	var b strings.Builder
	for i, in := range st.Insts {
		fmt.Fprintf(&b, "%s(%s):", st.Schema.Name(i), st.Schema.U.Format(in.Attrs, " "))
		tuples := make([]string, 0, in.Len())
		for _, t := range in.Rows() {
			parts := make([]string, len(t))
			for j, v := range t {
				parts[j] = st.Dict.Name(v)
			}
			tuples = append(tuples, "("+strings.Join(parts, ",")+")")
		}
		sort.Strings(tuples)
		b.WriteString(" " + strings.Join(tuples, " "))
		b.WriteString("\n")
	}
	return b.String()
}
