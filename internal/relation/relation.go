// Package relation implements relational instances and database states with
// constant values: tuples, projection, natural join, and construction of
// states as projections of universal instances.
//
// Values are integers; the optional Dict maps them to display names so the
// paper's examples (CS402, Smith, …) read naturally.
package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"indep/internal/attrset"
	"indep/internal/schema"
)

// Value is a constant domain element.
type Value int64

// Dict maps values to human-readable names. The zero value is usable.
type Dict struct {
	names []string
	bound []bool // whether names[v] is a real binding (Define leaves gaps)
	index map[string]Value
}

// Value interns name and returns its value.
func (d *Dict) Value(name string) Value {
	if d.index == nil {
		d.index = make(map[string]Value)
	}
	if v, ok := d.index[name]; ok {
		return v
	}
	v := Value(len(d.names))
	d.names = append(d.names, name)
	d.bound = append(d.bound, true)
	d.index[name] = v
	return v
}

// Lookup returns the value of an already-interned name without interning
// it. Query selection uses it: a name the dictionary has never seen cannot
// appear in any tuple, so the dictionary does not grow on misses.
func (d *Dict) Lookup(name string) (Value, bool) {
	if d == nil || d.index == nil {
		return 0, false
	}
	v, ok := d.index[name]
	return v, ok
}

// Name returns the display name of v, or its numeral if unnamed.
func (d *Dict) Name(v Value) string {
	if d != nil && v >= 0 && int(v) < len(d.names) && d.bound[v] {
		return d.names[v]
	}
	return fmt.Sprintf("%d", int64(v))
}

// Define binds v to name directly, growing the name table as needed. It lets
// callers that allocate values themselves (e.g. a sharded concurrent dict)
// materialize a plain Dict for display; values in the gaps render as
// numerals.
func (d *Dict) Define(v Value, name string) {
	if v < 0 {
		panic("relation: Define with negative value")
	}
	if d.index == nil {
		d.index = make(map[string]Value)
	}
	for int(v) >= len(d.names) {
		d.names = append(d.names, "")
		d.bound = append(d.bound, false)
	}
	d.names[v] = name
	d.bound[v] = true
	d.index[name] = v
}

// Each calls f for every bound (value, name) pair in ascending value
// order. Checkpoint serialization relies on the ordering: restoring the
// pairs in Each order reproduces the allocation order of the concurrent
// dictionary's shards.
func (d *Dict) Each(f func(v Value, name string)) {
	if d == nil {
		return
	}
	for i, name := range d.names {
		if d.bound[i] {
			f(Value(i), name)
		}
	}
}

// Tuple is a row of an instance. Its values are ordered by ascending
// attribute index of the owning instance's scheme.
type Tuple []Value

// key encodes a tuple for dedup/set membership.
func (t Tuple) key() string {
	var b strings.Builder
	for _, v := range t {
		fmt.Fprintf(&b, "%d|", int64(v))
	}
	return b.String()
}

// Clone copies the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Instance is a set of tuples over a relation scheme.
type Instance struct {
	Attrs  attrset.Set
	Tuples []Tuple
	index  map[string]int // tuple key → position in Tuples

	// secondary holds lazily built hash indexes over column subsets,
	// keyed by the column-position list (see MatchingTuples). Guarded by
	// secMu (read-locked on probes, write-locked only to build) and
	// dropped on every mutation, so it only persists — and amortizes — on
	// immutable instances such as engine snapshots.
	secMu     sync.RWMutex
	secondary map[string]map[string][]Tuple
}

// NewInstance creates an empty instance over the given scheme.
func NewInstance(attrs attrset.Set) *Instance {
	return &Instance{Attrs: attrs, index: make(map[string]int)}
}

// Len returns the number of tuples.
func (in *Instance) Len() int { return len(in.Tuples) }

// Width returns the arity of the instance.
func (in *Instance) Width() int { return in.Attrs.Len() }

// reindex (re)builds the key index; callers may have constructed the
// instance literally with a nil index.
func (in *Instance) reindex() {
	if in.index == nil {
		in.index = make(map[string]int, len(in.Tuples))
		for i, u := range in.Tuples {
			in.index[u.key()] = i
		}
	}
}

// invalidateSecondary drops the lazy match indexes; mutations call it so a
// stale index can never answer a probe.
func (in *Instance) invalidateSecondary() {
	if in.secondary == nil {
		return
	}
	in.secMu.Lock()
	in.secondary = nil
	in.secMu.Unlock()
}

// MatchingTuples returns the tuples agreeing with want on the given column
// positions (in the instance's column order). With no columns it returns
// every tuple. The first probe for a column set builds a hash index over it
// (O(n)); later probes are O(1) plus the match count. Indexes are dropped
// on mutation, so the amortization pays off on immutable instances — which
// is exactly what the window-query evaluator probes: its per-tuple
// extension joins against an engine snapshot would otherwise rescan the
// joined relation for every tuple. Safe for concurrent use by readers.
func (in *Instance) MatchingTuples(cols []int, want []Value) []Tuple {
	if len(cols) == 0 {
		return in.Tuples
	}
	var ck strings.Builder
	for _, c := range cols {
		fmt.Fprintf(&ck, "%d|", c)
	}
	in.secMu.RLock()
	idx, ok := in.secondary[ck.String()]
	in.secMu.RUnlock()
	if !ok {
		in.secMu.Lock()
		if in.secondary == nil {
			in.secondary = make(map[string]map[string][]Tuple)
		}
		if idx, ok = in.secondary[ck.String()]; !ok { // raced with another builder
			idx = make(map[string][]Tuple, len(in.Tuples))
			for _, t := range in.Tuples {
				var vk strings.Builder
				for _, c := range cols {
					fmt.Fprintf(&vk, "%d|", int64(t[c]))
				}
				idx[vk.String()] = append(idx[vk.String()], t)
			}
			in.secondary[ck.String()] = idx
		}
		in.secMu.Unlock()
	}
	var vk strings.Builder
	for _, v := range want {
		fmt.Fprintf(&vk, "%d|", int64(v))
	}
	return idx[vk.String()]
}

// Add inserts a tuple (deduplicating). It panics if the arity is wrong,
// since that is always a programming error.
func (in *Instance) Add(t Tuple) bool {
	if len(t) != in.Width() {
		panic(fmt.Sprintf("relation: tuple arity %d does not match scheme arity %d", len(t), in.Width()))
	}
	in.reindex()
	k := t.key()
	if _, ok := in.index[k]; ok {
		return false
	}
	in.invalidateSecondary()
	in.index[k] = len(in.Tuples)
	in.Tuples = append(in.Tuples, t.Clone())
	return true
}

// Remove deletes a tuple, reporting whether it was present. The last tuple
// is swapped into the vacated slot, so Tuples order is not stable across
// removals.
func (in *Instance) Remove(t Tuple) bool {
	in.reindex()
	k := t.key()
	pos, ok := in.index[k]
	if !ok {
		return false
	}
	in.invalidateSecondary()
	last := len(in.Tuples) - 1
	if pos != last {
		in.Tuples[pos] = in.Tuples[last]
		in.index[in.Tuples[pos].key()] = pos
	}
	in.Tuples[last] = nil
	in.Tuples = in.Tuples[:last]
	delete(in.index, k)
	return true
}

// Has reports whether the tuple is present.
func (in *Instance) Has(t Tuple) bool {
	in.reindex()
	_, ok := in.index[t.key()]
	return ok
}

// Clone deep-copies the instance.
func (in *Instance) Clone() *Instance {
	out := NewInstance(in.Attrs)
	for _, t := range in.Tuples {
		out.Add(t)
	}
	return out
}

// pos returns, for each attribute of sub (ascending), its column position
// within the scheme attrs (ascending order).
func pos(attrs, sub attrset.Set) []int {
	cols := attrs.Attrs()
	colAt := make(map[int]int, len(cols))
	for i, a := range cols {
		colAt[a] = i
	}
	subAttrs := sub.Attrs()
	out := make([]int, len(subAttrs))
	for i, a := range subAttrs {
		out[i] = colAt[a]
	}
	return out
}

// Project returns π_sub(in). sub must be a subset of the instance scheme.
func (in *Instance) Project(sub attrset.Set) *Instance {
	if !sub.SubsetOf(in.Attrs) {
		panic("relation: projection target not a subset of the scheme")
	}
	cols := pos(in.Attrs, sub)
	out := NewInstance(sub)
	for _, t := range in.Tuples {
		p := make(Tuple, len(cols))
		for i, c := range cols {
			p[i] = t[c]
		}
		out.Add(p)
	}
	return out
}

// Join returns the natural join of two instances.
func Join(a, b *Instance) *Instance {
	common := a.Attrs.Intersect(b.Attrs)
	aCols := pos(a.Attrs, common)
	bCols := pos(b.Attrs, common)
	// Index b by its common-attribute key.
	byKey := make(map[string][]Tuple)
	for _, t := range b.Tuples {
		var k strings.Builder
		for _, c := range bCols {
			fmt.Fprintf(&k, "%d|", int64(t[c]))
		}
		byKey[k.String()] = append(byKey[k.String()], t)
	}
	outAttrs := a.Attrs.Union(b.Attrs)
	out := NewInstance(outAttrs)
	outCols := outAttrs.Attrs()
	aIdx := make(map[int]int)
	for i, at := range a.Attrs.Attrs() {
		aIdx[at] = i
	}
	bIdx := make(map[int]int)
	for i, at := range b.Attrs.Attrs() {
		bIdx[at] = i
	}
	for _, ta := range a.Tuples {
		var k strings.Builder
		for _, c := range aCols {
			fmt.Fprintf(&k, "%d|", int64(ta[c]))
		}
		for _, tb := range byKey[k.String()] {
			joined := make(Tuple, len(outCols))
			for i, at := range outCols {
				if j, ok := aIdx[at]; ok {
					joined[i] = ta[j]
				} else {
					joined[i] = tb[bIdx[at]]
				}
			}
			out.Add(joined)
		}
	}
	return out
}

// Semijoin returns the tuples of a that join with some tuple of b.
func Semijoin(a, b *Instance) *Instance {
	common := a.Attrs.Intersect(b.Attrs)
	bKeys := make(map[string]bool)
	bCols := pos(b.Attrs, common)
	for _, t := range b.Tuples {
		var k strings.Builder
		for _, c := range bCols {
			fmt.Fprintf(&k, "%d|", int64(t[c]))
		}
		bKeys[k.String()] = true
	}
	aCols := pos(a.Attrs, common)
	out := NewInstance(a.Attrs)
	for _, t := range a.Tuples {
		var k strings.Builder
		for _, c := range aCols {
			fmt.Fprintf(&k, "%d|", int64(t[c]))
		}
		if bKeys[k.String()] {
			out.Add(t)
		}
	}
	return out
}

// State is a database state: one instance per scheme of a database schema.
type State struct {
	Schema *schema.Schema
	Insts  []*Instance
	Dict   *Dict // optional display dictionary
}

// NewState creates a state with empty instances for every scheme.
func NewState(s *schema.Schema) *State {
	st := &State{Schema: s, Insts: make([]*Instance, len(s.Rels)), Dict: &Dict{}}
	for i, r := range s.Rels {
		st.Insts[i] = NewInstance(r.Attrs)
	}
	return st
}

// Clone deep-copies the state (sharing the schema and dictionary).
func (st *State) Clone() *State {
	out := &State{Schema: st.Schema, Insts: make([]*Instance, len(st.Insts)), Dict: st.Dict}
	for i, in := range st.Insts {
		out.Insts[i] = in.Clone()
	}
	return out
}

// Add inserts a tuple into the named scheme's instance.
func (st *State) Add(scheme string, t Tuple) {
	i := st.Schema.IndexOf(scheme)
	if i < 0 {
		panic("relation: unknown scheme " + scheme)
	}
	st.Insts[i].Add(t)
}

// AddNamed inserts a tuple given as attribute-name → value-name pairs, using
// the state's dictionary. All attributes of the scheme must be present.
func (st *State) AddNamed(scheme string, vals map[string]string) {
	i := st.Schema.IndexOf(scheme)
	if i < 0 {
		panic("relation: unknown scheme " + scheme)
	}
	attrs := st.Schema.Attrs(i).Attrs()
	t := make(Tuple, len(attrs))
	for j, a := range attrs {
		name := st.Schema.U.Name(a)
		v, ok := vals[name]
		if !ok {
			panic("relation: missing value for attribute " + name)
		}
		t[j] = st.Dict.Value(v)
	}
	st.Insts[i].Add(t)
}

// TupleCount returns the total number of tuples in the state.
func (st *State) TupleCount() int {
	n := 0
	for _, in := range st.Insts {
		n += in.Len()
	}
	return n
}

// Universal is an instance over the full universe.
type Universal = Instance

// ProjectOnto builds the state π_D(I) from a universal instance.
func ProjectOnto(s *schema.Schema, universal *Instance) *State {
	st := NewState(s)
	for i, r := range s.Rels {
		st.Insts[i] = universal.Project(r.Attrs)
	}
	return st
}

// JoinAll computes the natural join of all instances of the state (*p in the
// paper's notation). Instances are joined in scheme order; the empty state
// joins to an empty universal instance.
func (st *State) JoinAll() *Instance {
	var acc *Instance
	for _, in := range st.Insts {
		if acc == nil {
			acc = in.Clone()
			continue
		}
		acc = Join(acc, in)
	}
	if acc == nil {
		acc = NewInstance(st.Schema.U.All())
	}
	return acc
}

// JoinConsistent reports whether the state is the set of projections of a
// single universal instance, i.e. π_{R_i}(*p) = r_i for every scheme.
func (st *State) JoinConsistent() bool {
	j := st.JoinAll()
	if j.Attrs != st.Schema.U.All() {
		return false
	}
	for _, in := range st.Insts {
		proj := j.Project(in.Attrs)
		if proj.Len() != in.Len() {
			return false
		}
		for _, t := range in.Tuples {
			if !proj.Has(t) {
				return false
			}
		}
	}
	return true
}

// String renders the state for debugging, one relation per line.
func (st *State) String() string {
	var b strings.Builder
	for i, in := range st.Insts {
		fmt.Fprintf(&b, "%s(%s):", st.Schema.Name(i), st.Schema.U.Format(in.Attrs, " "))
		tuples := make([]string, 0, in.Len())
		for _, t := range in.Tuples {
			parts := make([]string, len(t))
			for j, v := range t {
				parts[j] = st.Dict.Name(v)
			}
			tuples = append(tuples, "("+strings.Join(parts, ",")+")")
		}
		sort.Strings(tuples)
		b.WriteString(" " + strings.Join(tuples, " "))
		b.WriteString("\n")
	}
	return b.String()
}
