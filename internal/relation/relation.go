// Package relation implements relational instances and database states with
// constant values: tuples, projection, natural join, and construction of
// states as projections of universal instances.
//
// Values are integers; the optional Dict maps them to display names so the
// paper's examples (CS402, Smith, …) read naturally.
package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"indep/internal/attrset"
	"indep/internal/hashkey"
	"indep/internal/schema"
)

// Value is a constant domain element.
type Value int64

// Dict maps values to human-readable names. The zero value is usable.
type Dict struct {
	names []string
	bound []bool // whether names[v] is a real binding (Define leaves gaps)
	index map[string]Value
}

// Value interns name and returns its value.
func (d *Dict) Value(name string) Value {
	if d.index == nil {
		d.index = make(map[string]Value)
	}
	if v, ok := d.index[name]; ok {
		return v
	}
	v := Value(len(d.names))
	d.names = append(d.names, name)
	d.bound = append(d.bound, true)
	d.index[name] = v
	return v
}

// Lookup returns the value of an already-interned name without interning
// it. Query selection uses it: a name the dictionary has never seen cannot
// appear in any tuple, so the dictionary does not grow on misses.
func (d *Dict) Lookup(name string) (Value, bool) {
	if d == nil || d.index == nil {
		return 0, false
	}
	v, ok := d.index[name]
	return v, ok
}

// Name returns the display name of v, or its numeral if unnamed.
func (d *Dict) Name(v Value) string {
	if d != nil && v >= 0 && int(v) < len(d.names) && d.bound[v] {
		return d.names[v]
	}
	return fmt.Sprintf("%d", int64(v))
}

// Define binds v to name directly, growing the name table as needed. It lets
// callers that allocate values themselves (e.g. a sharded concurrent dict)
// materialize a plain Dict for display; values in the gaps render as
// numerals.
func (d *Dict) Define(v Value, name string) {
	if v < 0 {
		panic("relation: Define with negative value")
	}
	if d.index == nil {
		d.index = make(map[string]Value)
	}
	for int(v) >= len(d.names) {
		d.names = append(d.names, "")
		d.bound = append(d.bound, false)
	}
	d.names[v] = name
	d.bound[v] = true
	d.index[name] = v
}

// Each calls f for every bound (value, name) pair in ascending value
// order. Checkpoint serialization relies on the ordering: restoring the
// pairs in Each order reproduces the allocation order of the concurrent
// dictionary's shards.
func (d *Dict) Each(f func(v Value, name string)) {
	if d == nil {
		return
	}
	for i, name := range d.names {
		if d.bound[i] {
			f(Value(i), name)
		}
	}
}

// Tuple is a row of an instance. Its values are ordered by ascending
// attribute index of the owning instance's scheme.
type Tuple []Value

// hash is the tuple's 64-bit content key. Indexes bucket by it and resolve
// collisions by comparing values, so dedup never allocates a string key.
func (t Tuple) hash() uint64 { return hashkey.Int64s(t) }

// Equal reports value equality of two tuples.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i, v := range t {
		if v != o[i] {
			return false
		}
	}
	return true
}

// HashCols hashes the tuple's values at the given column positions with
// the same fold as the full-tuple hash, so any index layer keyed over a
// column subset (the instance's own secondary indexes, the maintenance
// guard's FD indexes) stays fold-compatible with the relation layer.
func HashCols(t Tuple, cols []int) uint64 {
	h := hashkey.Init
	for _, c := range cols {
		h = hashkey.Mix(h, uint64(t[c]))
	}
	return h
}

// AgreeAt reports whether two tuples of the same scheme carry equal values
// at the given column positions — the verification step for any bucket
// keyed by HashCols.
func AgreeAt(a, b Tuple, cols []int) bool {
	for _, c := range cols {
		if a[c] != b[c] {
			return false
		}
	}
	return true
}

// Clone copies the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Instance is a set of tuples over a relation scheme.
//
// The primary index buckets tuples by their 64-bit content hash: pos holds
// the first position seen for a hash, over the (rare) extra positions when
// distinct tuples collide. Membership probes hash the tuple and compare
// values — no string key is ever built, so Has and duplicate Adds are
// allocation-free.
type Instance struct {
	Attrs  attrset.Set
	Tuples []Tuple
	pos    map[uint64]int32   // tuple hash → first position in Tuples
	over   map[uint64][]int32 // additional positions on hash collision

	// secondary holds lazily built hash indexes over column subsets,
	// keyed by the column-position list (see MatchingTuples). Guarded by
	// secMu (read-locked on probes, write-locked only to build) and
	// dropped on every mutation, so it only persists — and amortizes — on
	// immutable instances such as engine snapshots.
	secMu     sync.RWMutex
	secondary map[uint64][]*colIndex
}

// NewInstance creates an empty instance over the given scheme.
func NewInstance(attrs attrset.Set) *Instance {
	return &Instance{Attrs: attrs, pos: make(map[uint64]int32)}
}

// Len returns the number of tuples.
func (in *Instance) Len() int { return len(in.Tuples) }

// Width returns the arity of the instance.
func (in *Instance) Width() int { return in.Attrs.Len() }

// reindex (re)builds the hash index; callers may have constructed the
// instance literally with a nil index.
func (in *Instance) reindex() {
	if in.pos == nil {
		in.pos = make(map[uint64]int32, len(in.Tuples))
		for i, u := range in.Tuples {
			in.indexAdd(u.hash(), int32(i))
		}
	}
}

// find returns the position of t, or -1. Callers have run reindex.
func (in *Instance) find(t Tuple) int32 {
	h := t.hash()
	p, ok := in.pos[h]
	if !ok {
		return -1
	}
	if in.Tuples[p].Equal(t) {
		return p
	}
	for _, q := range in.over[h] {
		if in.Tuples[q].Equal(t) {
			return q
		}
	}
	return -1
}

// indexAdd records position i for a tuple hashing to h.
func (in *Instance) indexAdd(h uint64, i int32) {
	if _, ok := in.pos[h]; !ok {
		in.pos[h] = i
		return
	}
	if in.over == nil {
		in.over = make(map[uint64][]int32)
	}
	in.over[h] = append(in.over[h], i)
}

// indexRemove forgets position i for a tuple hashing to h.
func (in *Instance) indexRemove(h uint64, i int32) {
	if in.pos[h] == i {
		if ov := in.over[h]; len(ov) > 0 {
			in.pos[h] = ov[len(ov)-1]
			in.shrinkOver(h, len(ov)-1)
		} else {
			delete(in.pos, h)
		}
		return
	}
	for j, q := range in.over[h] {
		if q == i {
			ov := in.over[h]
			ov[j] = ov[len(ov)-1]
			in.shrinkOver(h, len(ov)-1)
			return
		}
	}
}

// indexMove rewrites position from → to for a tuple hashing to h (the
// swap-with-last step of Remove).
func (in *Instance) indexMove(h uint64, from, to int32) {
	if in.pos[h] == from {
		in.pos[h] = to
		return
	}
	for j, q := range in.over[h] {
		if q == from {
			in.over[h][j] = to
			return
		}
	}
}

func (in *Instance) shrinkOver(h uint64, n int) {
	if n == 0 {
		delete(in.over, h)
	} else {
		in.over[h] = in.over[h][:n]
	}
}

// invalidateSecondary drops the lazy match indexes; mutations call it so a
// stale index can never answer a probe.
func (in *Instance) invalidateSecondary() {
	if in.secondary == nil {
		return
	}
	in.secMu.Lock()
	in.secondary = nil
	in.secMu.Unlock()
}

// colIndex is a lazily built hash index of the instance's tuples over one
// column subset: buckets maps the hash of a tuple's values at cols to the
// tuples carrying them. Distinct value vectors can share a bucket (64-bit
// hash collisions), so probes verify the values before trusting a bucket.
type colIndex struct {
	cols    []int
	buckets map[uint64][]Tuple
}

// matchesAt reports whether t agrees with want on the column positions.
func matchesAt(t Tuple, cols []int, want []Value) bool {
	for i, c := range cols {
		if t[c] != want[i] {
			return false
		}
	}
	return true
}

// MatchingTuples returns the tuples agreeing with want on the given column
// positions (in the instance's column order). With no columns it returns
// every tuple. The first probe for a column set builds a hash index over it
// (O(n)); later probes are O(1) plus the match count and allocation-free
// unless a hash collision forces a filtered copy. Indexes are dropped on
// mutation, so the amortization pays off on immutable instances — which is
// exactly what the window-query evaluator probes: its per-tuple extension
// joins against an engine snapshot would otherwise rescan the joined
// relation for every tuple. Safe for concurrent use by readers.
func (in *Instance) MatchingTuples(cols []int, want []Value) []Tuple {
	if len(cols) == 0 {
		return in.Tuples
	}
	ck := hashkey.Ints(cols)
	var idx *colIndex
	in.secMu.RLock()
	for _, ci := range in.secondary[ck] {
		if intsEqual(ci.cols, cols) {
			idx = ci
			break
		}
	}
	in.secMu.RUnlock()
	if idx == nil {
		in.secMu.Lock()
		if in.secondary == nil {
			in.secondary = make(map[uint64][]*colIndex)
		}
		for _, ci := range in.secondary[ck] { // raced with another builder
			if intsEqual(ci.cols, cols) {
				idx = ci
				break
			}
		}
		if idx == nil {
			idx = &colIndex{
				cols:    append([]int(nil), cols...),
				buckets: make(map[uint64][]Tuple, len(in.Tuples)),
			}
			for _, t := range in.Tuples {
				h := HashCols(t, cols)
				idx.buckets[h] = append(idx.buckets[h], t)
			}
			in.secondary[ck] = append(in.secondary[ck], idx)
		}
		in.secMu.Unlock()
	}
	cands := idx.buckets[hashkey.Int64s(want)]
	n := 0
	for _, t := range cands {
		if matchesAt(t, cols, want) {
			n++
		}
	}
	if n == len(cands) {
		return cands
	}
	out := make([]Tuple, 0, n)
	for _, t := range cands {
		if matchesAt(t, cols, want) {
			out = append(out, t)
		}
	}
	return out
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// Add inserts a tuple (deduplicating). It panics if the arity is wrong,
// since that is always a programming error. Duplicate adds are
// allocation-free; a fresh add allocates only the stored clone (plus
// amortized table growth).
func (in *Instance) Add(t Tuple) bool {
	if len(t) != in.Width() {
		panic(fmt.Sprintf("relation: tuple arity %d does not match scheme arity %d", len(t), in.Width()))
	}
	in.reindex()
	if in.find(t) >= 0 {
		return false
	}
	in.invalidateSecondary()
	in.indexAdd(t.hash(), int32(len(in.Tuples)))
	in.Tuples = append(in.Tuples, t.Clone())
	return true
}

// Remove deletes a tuple, reporting whether it was present. The last tuple
// is swapped into the vacated slot, so Tuples order is not stable across
// removals.
func (in *Instance) Remove(t Tuple) bool {
	in.reindex()
	pos := in.find(t)
	if pos < 0 {
		return false
	}
	in.invalidateSecondary()
	in.indexRemove(t.hash(), pos)
	last := int32(len(in.Tuples) - 1)
	if pos != last {
		moved := in.Tuples[last]
		in.Tuples[pos] = moved
		in.indexMove(moved.hash(), last, pos)
	}
	in.Tuples[last] = nil
	in.Tuples = in.Tuples[:last]
	return true
}

// Has reports whether the tuple is present. It never allocates.
func (in *Instance) Has(t Tuple) bool {
	in.reindex()
	return in.find(t) >= 0
}

// Clone deep-copies the instance.
func (in *Instance) Clone() *Instance {
	out := NewInstance(in.Attrs)
	for _, t := range in.Tuples {
		out.Add(t)
	}
	return out
}

// ProjectionCols returns, for each attribute of sub (ascending), its
// column position within the scheme attrs (ascending order) — the shared
// projection/join column map; the query layer uses it too, so projection
// semantics cannot diverge between layers.
func ProjectionCols(attrs, sub attrset.Set) []int {
	cols := attrs.Attrs()
	colAt := make(map[int]int, len(cols))
	for i, a := range cols {
		colAt[a] = i
	}
	subAttrs := sub.Attrs()
	out := make([]int, len(subAttrs))
	for i, a := range subAttrs {
		out[i] = colAt[a]
	}
	return out
}

// Project returns π_sub(in). sub must be a subset of the instance scheme.
func (in *Instance) Project(sub attrset.Set) *Instance {
	if !sub.SubsetOf(in.Attrs) {
		panic("relation: projection target not a subset of the scheme")
	}
	cols := ProjectionCols(in.Attrs, sub)
	out := NewInstance(sub)
	for _, t := range in.Tuples {
		p := make(Tuple, len(cols))
		for i, c := range cols {
			p[i] = t[c]
		}
		out.Add(p)
	}
	return out
}

// agreeOn reports whether ta and tb carry the same values at the paired
// column positions — the natural-join condition itself, so hash buckets
// verified with it can never admit a false match.
func agreeOn(ta Tuple, aCols []int, tb Tuple, bCols []int) bool {
	for i, c := range aCols {
		if ta[c] != tb[bCols[i]] {
			return false
		}
	}
	return true
}

// Join returns the natural join of two instances.
func Join(a, b *Instance) *Instance {
	common := a.Attrs.Intersect(b.Attrs)
	aCols := ProjectionCols(a.Attrs, common)
	bCols := ProjectionCols(b.Attrs, common)
	// Bucket b by the hash of its common-attribute values; probes verify
	// the join condition directly, so collisions cost a comparison, never
	// a wrong row.
	byKey := make(map[uint64][]Tuple, len(b.Tuples))
	for _, t := range b.Tuples {
		h := HashCols(t, bCols)
		byKey[h] = append(byKey[h], t)
	}
	outAttrs := a.Attrs.Union(b.Attrs)
	out := NewInstance(outAttrs)
	outCols := outAttrs.Attrs()
	aIdx := make(map[int]int)
	for i, at := range a.Attrs.Attrs() {
		aIdx[at] = i
	}
	bIdx := make(map[int]int)
	for i, at := range b.Attrs.Attrs() {
		bIdx[at] = i
	}
	for _, ta := range a.Tuples {
		for _, tb := range byKey[HashCols(ta, aCols)] {
			if !agreeOn(ta, aCols, tb, bCols) {
				continue
			}
			joined := make(Tuple, len(outCols))
			for i, at := range outCols {
				if j, ok := aIdx[at]; ok {
					joined[i] = ta[j]
				} else {
					joined[i] = tb[bIdx[at]]
				}
			}
			out.Add(joined)
		}
	}
	return out
}

// Semijoin returns the tuples of a that join with some tuple of b.
func Semijoin(a, b *Instance) *Instance {
	common := a.Attrs.Intersect(b.Attrs)
	bCols := ProjectionCols(b.Attrs, common)
	bKeys := make(map[uint64][]Tuple, len(b.Tuples))
	for _, t := range b.Tuples {
		h := HashCols(t, bCols)
		bKeys[h] = append(bKeys[h], t)
	}
	aCols := ProjectionCols(a.Attrs, common)
	out := NewInstance(a.Attrs)
	for _, t := range a.Tuples {
		for _, tb := range bKeys[HashCols(t, aCols)] {
			if agreeOn(t, aCols, tb, bCols) {
				out.Add(t)
				break
			}
		}
	}
	return out
}

// State is a database state: one instance per scheme of a database schema.
type State struct {
	Schema *schema.Schema
	Insts  []*Instance
	Dict   *Dict // optional display dictionary
}

// NewState creates a state with empty instances for every scheme.
func NewState(s *schema.Schema) *State {
	st := &State{Schema: s, Insts: make([]*Instance, len(s.Rels)), Dict: &Dict{}}
	for i, r := range s.Rels {
		st.Insts[i] = NewInstance(r.Attrs)
	}
	return st
}

// Clone deep-copies the state (sharing the schema and dictionary).
func (st *State) Clone() *State {
	out := &State{Schema: st.Schema, Insts: make([]*Instance, len(st.Insts)), Dict: st.Dict}
	for i, in := range st.Insts {
		out.Insts[i] = in.Clone()
	}
	return out
}

// Add inserts a tuple into the named scheme's instance.
func (st *State) Add(scheme string, t Tuple) {
	i := st.Schema.IndexOf(scheme)
	if i < 0 {
		panic("relation: unknown scheme " + scheme)
	}
	st.Insts[i].Add(t)
}

// AddNamed inserts a tuple given as attribute-name → value-name pairs, using
// the state's dictionary. All attributes of the scheme must be present.
func (st *State) AddNamed(scheme string, vals map[string]string) {
	i := st.Schema.IndexOf(scheme)
	if i < 0 {
		panic("relation: unknown scheme " + scheme)
	}
	attrs := st.Schema.Attrs(i).Attrs()
	t := make(Tuple, len(attrs))
	for j, a := range attrs {
		name := st.Schema.U.Name(a)
		v, ok := vals[name]
		if !ok {
			panic("relation: missing value for attribute " + name)
		}
		t[j] = st.Dict.Value(v)
	}
	st.Insts[i].Add(t)
}

// TupleCount returns the total number of tuples in the state.
func (st *State) TupleCount() int {
	n := 0
	for _, in := range st.Insts {
		n += in.Len()
	}
	return n
}

// Universal is an instance over the full universe.
type Universal = Instance

// ProjectOnto builds the state π_D(I) from a universal instance.
func ProjectOnto(s *schema.Schema, universal *Instance) *State {
	st := NewState(s)
	for i, r := range s.Rels {
		st.Insts[i] = universal.Project(r.Attrs)
	}
	return st
}

// JoinAll computes the natural join of all instances of the state (*p in the
// paper's notation). Instances are joined in scheme order; the empty state
// joins to an empty universal instance.
func (st *State) JoinAll() *Instance {
	var acc *Instance
	for _, in := range st.Insts {
		if acc == nil {
			acc = in.Clone()
			continue
		}
		acc = Join(acc, in)
	}
	if acc == nil {
		acc = NewInstance(st.Schema.U.All())
	}
	return acc
}

// JoinConsistent reports whether the state is the set of projections of a
// single universal instance, i.e. π_{R_i}(*p) = r_i for every scheme.
func (st *State) JoinConsistent() bool {
	j := st.JoinAll()
	if j.Attrs != st.Schema.U.All() {
		return false
	}
	for _, in := range st.Insts {
		proj := j.Project(in.Attrs)
		if proj.Len() != in.Len() {
			return false
		}
		for _, t := range in.Tuples {
			if !proj.Has(t) {
				return false
			}
		}
	}
	return true
}

// String renders the state for debugging, one relation per line.
func (st *State) String() string {
	var b strings.Builder
	for i, in := range st.Insts {
		fmt.Fprintf(&b, "%s(%s):", st.Schema.Name(i), st.Schema.U.Format(in.Attrs, " "))
		tuples := make([]string, 0, in.Len())
		for _, t := range in.Tuples {
			parts := make([]string, len(t))
			for j, v := range t {
				parts[j] = st.Dict.Name(v)
			}
			tuples = append(tuples, "("+strings.Join(parts, ",")+")")
		}
		sort.Strings(tuples)
		b.WriteString(" " + strings.Join(tuples, " "))
		b.WriteString("\n")
	}
	return b.String()
}
