package relation

import (
	"testing"

	"indep/internal/attrset"
)

// benchInstance builds a width-column instance with rows distinct live rows.
func benchInstance(b *testing.B, width, rows int) *Instance {
	b.Helper()
	var attrs attrset.Set
	for a := 0; a < width; a++ {
		attrs.Add(a)
	}
	in := NewInstance(attrs)
	t := make(Tuple, width)
	for r := 0; r < rows; r++ {
		for c := range t {
			t[c] = Value(r*width + c)
		}
		if !in.Add(t) {
			b.Fatal("duplicate row in setup")
		}
	}
	return in
}

// BenchmarkWindowScanBandwidth measures the raw scan rate of the storage
// layout over a wide instance (16 columns, 50k rows), with b.SetBytes
// reporting effective memory bandwidth so layout regressions show up as
// MB/s, not just ns/op.
//
// project is the window-render access pattern — every live row gathered
// into a scratch tuple, row-major over the column arenas. columns is the
// streaming pattern selective scans and checkpoint encoding use — each
// column arena walked contiguously.
func BenchmarkWindowScanBandwidth(b *testing.B) {
	const width, rows = 16, 50000
	in := benchInstance(b, width, rows)
	live := in.LiveRows()
	b.Run("project", func(b *testing.B) {
		proj := make(Tuple, width)
		b.SetBytes(int64(width * rows * 8))
		b.ReportAllocs()
		b.ResetTimer()
		var sink Value
		for i := 0; i < b.N; i++ {
			for _, s := range live {
				proj = in.AppendRow(proj[:0], s)
				sink += proj[0]
			}
		}
		_ = sink
	})
	b.Run("columns", func(b *testing.B) {
		b.SetBytes(int64(width * rows * 8))
		b.ReportAllocs()
		b.ResetTimer()
		var sum Value
		for i := 0; i < b.N; i++ {
			for c := 0; c < width; c++ {
				col := in.Col(c)
				for _, s := range live {
					sum += col[s]
				}
			}
		}
		if sum == 1 {
			b.Fatal("impossible") // keep the scan from being optimized away
		}
	})
}
