package indep

import (
	"fmt"
	"sync"
	"testing"
)

func mustStore(t *testing.T, schemaSrc, fdSrc string) *ConcurrentStore {
	t.Helper()
	cs, err := MustParse(schemaSrc, fdSrc).OpenConcurrentStore()
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func seedUniversity(t *testing.T, cs *ConcurrentStore) {
	t.Helper()
	for _, op := range []BatchOp{
		{Rel: "CT", Row: map[string]string{"C": "cs101", "T": "jones"}},
		{Rel: "CT", Row: map[string]string{"C": "cs102", "T": "curie"}},
		{Rel: "CS", Row: map[string]string{"C": "cs101", "S": "ada"}},
		{Rel: "CS", Row: map[string]string{"C": "cs101", "S": "bob"}},
		{Rel: "CS", Row: map[string]string{"C": "cs999", "S": "eve"}},
		{Rel: "CHR", Row: map[string]string{"C": "cs101", "H": "mon9", "R": "r12"}},
	} {
		if err := cs.Insert(op.Rel, op.Row); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConcurrentStoreWindow(t *testing.T) {
	cs := mustStore(t, "CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	seedUniversity(t, cs)

	// Cross-relation window: each student with the teacher of their course.
	res, err := cs.Window("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	if !res.FastPath {
		t.Fatal("independent schema must use the fast path")
	}
	if len(res.Rows) != 2 {
		t.Fatalf("window [S T] = %v", res.Rows)
	}
	// Rows are sorted by value, so the result is deterministic.
	if res.Rows[0]["S"] != "ada" || res.Rows[0]["T"] != "jones" {
		t.Fatalf("window [S T] rows: %v", res.Rows)
	}

	// Selection + projection + limit.
	res, err = cs.Query(WindowQuery{
		Attrs:   []string{"C", "S", "T"},
		Where:   map[string]string{"T": "jones"},
		Project: []string{"S"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0]["S"] != "ada" || res.Rows[1]["S"] != "bob" {
		t.Fatalf("jones' students: %v", res.Rows)
	}
	res, err = cs.Query(WindowQuery{Attrs: []string{"C", "S"}, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Total != 3 {
		t.Fatalf("limited window: rows=%v total=%d", res.Rows, res.Total)
	}

	// A value the store has never seen matches nothing (and must not
	// intern, i.e. later queries still see nothing).
	res, err = cs.Query(WindowQuery{
		Attrs: []string{"C", "T"},
		Where: map[string]string{"T": "nobody"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("unseen value matched: %v", res.Rows)
	}

	// Errors: unknown attribute, Where outside the window, Project not a
	// subset, empty attribute set.
	if _, err := cs.Window("NOPE"); err == nil {
		t.Fatal("unknown attribute must be rejected")
	}
	if _, err := cs.Query(WindowQuery{Attrs: []string{"C"}, Where: map[string]string{"T": "x"}}); err == nil {
		t.Fatal("Where outside the window must be rejected")
	}
	if _, err := cs.Query(WindowQuery{Attrs: []string{"C"}, Project: []string{"T"}}); err == nil {
		t.Fatal("Project outside the window must be rejected")
	}
	if _, err := cs.Query(WindowQuery{}); err == nil {
		t.Fatal("empty attribute set must be rejected")
	}

	qs := cs.QueryStats()
	if qs.Queries == 0 || qs.FastEvals == 0 {
		t.Fatalf("query stats: %+v", qs)
	}
}

func TestDatabaseWindow(t *testing.T) {
	// Snapshot of a store answers windows through the same public API.
	cs := mustStore(t, "CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	seedUniversity(t, cs)
	snap := cs.Snapshot()
	res, err := snap.Window("C", "S", "T")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || !res.FastPath {
		t.Fatalf("snapshot window: %v fast=%v", res.Rows, res.FastPath)
	}

	// Non-independent schema: the chase fallback answers through the JD
	// rule (A -> C is not embedded in any scheme).
	sch := MustParse("AB(A,B); BC(B,C)", "A -> C")
	db := sch.NewDatabase()
	if err := db.Insert("AB", map[string]string{"A": "a1", "B": "b1"}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("BC", map[string]string{"B": "b1", "C": "c1"}); err != nil {
		t.Fatal(err)
	}
	res, err = db.Window("A", "C")
	if err != nil {
		t.Fatal(err)
	}
	if res.FastPath {
		t.Fatal("non-independent schema must fall back to the chase")
	}
	if len(res.Rows) != 1 || res.Rows[0]["A"] != "a1" || res.Rows[0]["C"] != "c1" {
		t.Fatalf("window [A C] = %v", res.Rows)
	}
}

// TestWindowReadDuringWriteRace asserts (under -race) that a window always
// reflects a consistent snapshot. Writers insert the two halves of each
// entity atomically — A(K_i, X_i) and B(K_i, Y_i) in one batch — so in
// every consistent cut a key is either fully present or fully absent. A
// torn read would surface as a K that appears in the window [K] but not in
// the window [K X Y] (its extension would hit a missing half).
func TestWindowReadDuringWriteRace(t *testing.T) {
	cs := mustStore(t, "A(K,X); B(K,Y)", "K -> X; K -> Y")
	if !cs.FastPath() {
		t.Fatal("test schema should be independent")
	}
	const writers, perWriter = 4, 100
	var wg sync.WaitGroup
	stop := make(chan struct{})

	writeErr := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				k := fmt.Sprintf("k_%d_%d", w, i)
				err := cs.InsertBatch([]BatchOp{
					{Rel: "A", Row: map[string]string{"K": k, "X": "x" + k}},
					{Rel: "B", Row: map[string]string{"K": k, "Y": "y" + k}},
				})
				if err != nil {
					writeErr <- err
					return
				}
			}
			writeErr <- nil
		}(w)
	}

	readErr := make(chan error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					readErr <- nil
					return
				default:
				}
				full, err := cs.Window("K", "X", "Y")
				if err != nil {
					readErr <- err
					return
				}
				keys, err := cs.Window("K")
				if err != nil {
					readErr <- err
					return
				}
				// [K] was taken after [K X Y], so it can only have grown.
				if len(keys.Rows) < len(full.Rows) {
					readErr <- fmt.Errorf("torn read: %d keys but %d full rows",
						len(keys.Rows), len(full.Rows))
					return
				}
			}
		}()
	}

	for w := 0; w < writers; w++ {
		if err := <-writeErr; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	for r := 0; r < 2; r++ {
		if err := <-readErr; err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	// Final state: every key fully present.
	full, err := cs.Window("K", "X", "Y")
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Rows) != writers*perWriter {
		t.Fatalf("final window = %d rows, want %d", len(full.Rows), writers*perWriter)
	}

	// Each reader iteration evaluated two windows against at most two
	// snapshot cuts; the cache must have served the unchanged ones.
	qs := cs.QueryStats()
	if qs.SnapshotReuses == 0 {
		t.Logf("no snapshot reuse observed (possible under heavy write interleaving): %+v", qs)
	}
}

// TestWindowSnapshotReuse: with no writes in between, repeated queries
// share one cached snapshot and never take the state locks.
func TestWindowSnapshotReuse(t *testing.T) {
	cs := mustStore(t, "CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	seedUniversity(t, cs)
	for i := 0; i < 5; i++ {
		if _, err := cs.Window("C", "T"); err != nil {
			t.Fatal(err)
		}
	}
	qs := cs.QueryStats()
	if qs.SnapshotCopies != 1 || qs.SnapshotReuses != 4 {
		t.Fatalf("snapshot cache: %+v", qs)
	}

	// A write invalidates the cache; the next query cuts a fresh snapshot
	// and sees the new row.
	if err := cs.Insert("CT", map[string]string{"C": "cs103", "T": "noether"}); err != nil {
		t.Fatal(err)
	}
	res, err := cs.Window("C", "T")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("window after write: %v", res.Rows)
	}
	if qs := cs.QueryStats(); qs.SnapshotCopies != 2 {
		t.Fatalf("write should invalidate the snapshot cache: %+v", qs)
	}
}

// TestDurableStoreWindow: DurableStore inherits the query API, and windows
// survive recovery.
func TestDurableStoreWindow(t *testing.T) {
	dir := t.TempDir()
	sch := MustParse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	ds, err := sch.OpenDurableStore(dir, DurableOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Insert("CT", map[string]string{"C": "cs101", "T": "jones"}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Insert("CS", map[string]string{"C": "cs101", "S": "ada"}); err != nil {
		t.Fatal(err)
	}
	res, err := ds.Window("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["T"] != "jones" {
		t.Fatalf("durable window: %v", res.Rows)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	ds2, err := sch.OpenDurableStore(dir, DurableOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ds2.Close()
	res, err = ds2.Window("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["S"] != "ada" {
		t.Fatalf("recovered window: %v", res.Rows)
	}
}
