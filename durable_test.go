package indep

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// starSchema builds an independent star schema (one fact, key-guarded
// dimensions) through the public facade, mirroring the workload generator's
// ShapeStar with one key FD per dimension.
func starSchema(t testing.TB, dims, attrsPerDim int) *Schema {
	t.Helper()
	var rels, fds []string
	var factAttrs []string
	for d := 1; d <= dims; d++ {
		key := fmt.Sprintf("K%d", d)
		attrs := []string{key}
		for a := 1; a <= attrsPerDim; a++ {
			attrs = append(attrs, fmt.Sprintf("D%d_%d", d, a))
		}
		rels = append(rels, fmt.Sprintf("DIM%d(%s)", d, strings.Join(attrs, ",")))
		fds = append(fds, fmt.Sprintf("%s -> %s", key, strings.Join(attrs[1:], " ")))
		factAttrs = append(factAttrs, key)
	}
	rels = append([]string{fmt.Sprintf("FACT(%s)", strings.Join(factAttrs, ","))}, rels...)
	sch, err := Parse(strings.Join(rels, "; "), strings.Join(fds, "; "))
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

// starBatch generates n rows spread over the star's relations; each seed
// produces functionally consistent dimension rows.
func starBatch(sch *Schema, dims int, n int) []BatchOp {
	ops := make([]BatchOp, 0, n)
	for i := 0; i < n; i++ {
		seed := i / (dims + 1)
		switch rel := i % (dims + 1); rel {
		case 0:
			row := map[string]string{}
			for d := 1; d <= dims; d++ {
				row[fmt.Sprintf("K%d", d)] = fmt.Sprintf("k%d-%d", d, seed)
			}
			ops = append(ops, BatchOp{Rel: "FACT", Row: row})
		default:
			row := map[string]string{fmt.Sprintf("K%d", rel): fmt.Sprintf("k%d-%d", rel, seed)}
			relName := fmt.Sprintf("DIM%d", rel)
			attrs, _ := sch.RelationAttrs(relName)
			for _, a := range attrs {
				if !strings.HasPrefix(a, "K") {
					row[a] = fmt.Sprintf("v%s-%d", a, seed)
				}
			}
			ops = append(ops, BatchOp{Rel: relName, Row: row})
		}
	}
	return ops
}

// assertLocallyConsistent checks the recovered invariant the paper
// guarantees for independent schemas: every relation satisfies its
// embedded cover, hence the state has a weak instance.
func assertLocallyConsistent(t *testing.T, sch *Schema, ds *DurableStore) {
	t.Helper()
	snap := ds.Snapshot()
	ok, err := snap.Satisfies()
	if err != nil {
		t.Fatalf("satisfies: %v", err)
	}
	if !ok {
		t.Fatal("recovered state is not consistent")
	}
}

// TestKillRestartStarWorkload is the acceptance drill: populate a durable
// store with a star-workload batch, "kill" it (abandon without checkpoint
// or close), and reopen. The recovered snapshot must be byte-identical.
func TestKillRestartStarWorkload(t *testing.T) {
	dir := t.TempDir()
	const dims = 4
	sch := starSchema(t, dims, 3)
	ds, err := sch.OpenDurableStore(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ops := starBatch(sch, dims, 300)
	for i := 0; i < len(ops); i += 64 {
		end := min(i+64, len(ops))
		if err := ds.InsertBatch(ops[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	// A few singles and a delete, to exercise every record kind.
	if err := ds.Insert("DIM1", map[string]string{"K1": "solo", "D1_1": "a", "D1_2": "b", "D1_3": "c"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Delete("DIM1", map[string]string{"K1": "solo", "D1_1": "a", "D1_2": "b", "D1_3": "c"}); err != nil {
		t.Fatal(err)
	}
	want := ds.Snapshot().String()
	wantRows := ds.Rows()
	// Kill: no Checkpoint, no Close. Every acknowledged write is already
	// fsynced (SyncAlways), which is exactly the crash contract. Only the
	// directory lock is released by hand — the kernel would do that for a
	// real dead process.
	ds.unlock()

	re, err := sch.OpenDurableStore(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer re.Close()
	if got := re.Snapshot().String(); got != want {
		t.Fatalf("recovered snapshot differs:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if re.Rows() != wantRows {
		t.Fatalf("recovered %d rows, want %d", re.Rows(), wantRows)
	}
	rec := re.Recovery()
	if rec.Records == 0 || rec.Skipped != 0 {
		t.Fatalf("unexpected recovery stats %+v", rec)
	}
	assertLocallyConsistent(t, sch, re)

	// Recovery is idempotent: writes keep working after recovery.
	if err := re.Insert("DIM1", map[string]string{"K1": "post", "D1_1": "x", "D1_2": "y", "D1_3": "z"}); err != nil {
		t.Fatal(err)
	}
}

func TestDurableCheckpointAndTruncation(t *testing.T) {
	dir := t.TempDir()
	sch := starSchema(t, 3, 2)
	ds, err := sch.OpenDurableStore(dir, DurableOptions{NoFsync: true, SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.InsertBatch(starBatch(sch, 3, 400)); err != nil {
		t.Fatal(err)
	}
	preDepth := ds.WAL().TotalBytes
	if err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := ds.WAL().TotalBytes; got >= preDepth {
		t.Fatalf("checkpoint did not shrink the log: %d -> %d", preDepth, got)
	}
	// Post-checkpoint traffic, including deletes (which reorder tuples in
	// place — recovery must reproduce the exact layout anyway).
	if err := ds.Insert("DIM1", map[string]string{"K1": "late", "D1_1": "p", "D1_2": "q"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Delete("DIM2", map[string]string{"K2": "k2-0", "D2_1": "vD2_1-0", "D2_2": "vD2_2-0"}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	want := ds.Snapshot().String()

	re, err := sch.OpenDurableStore(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer re.Close()
	rec := re.Recovery()
	if rec.CheckpointSeq == 0 || rec.CheckpointTuples == 0 {
		t.Fatalf("checkpoint not used in recovery: %+v", rec)
	}
	if got := re.Snapshot().String(); got != want {
		t.Fatalf("recovered snapshot differs after checkpoint:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	assertLocallyConsistent(t, sch, re)

	// A second checkpoint over the recovered store keeps working.
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableTornTailEveryOffset is the crash-recovery property test: for
// EVERY byte offset inside the tail record, both truncating the log there
// and corrupting that byte must recover cleanly to the state without the
// tail record.
func TestDurableTornTailEveryOffset(t *testing.T) {
	srcDir := t.TempDir()
	sch := starSchema(t, 2, 2)
	ds, err := sch.OpenDurableStore(srcDir, DurableOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.InsertBatch(starBatch(sch, 2, 60)); err != nil {
		t.Fatal(err)
	}
	// Expected prefix state: everything except the tail insert below. The
	// tail record interns no new values beyond its own, so losing it
	// restores exactly this state.
	wantPrefix := ds.Snapshot().String()
	// The tail record: a single insert, so its loss is easy to predict.
	if err := ds.Insert("DIM1", map[string]string{"K1": "tail", "D1_1": "t1", "D1_2": "t2"}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	wantFull := ds.Snapshot().String()

	// Locate the tail record's frame in the last segment.
	segs, err := filepath.Glob(filepath.Join(srcDir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	tailStart := tailFrameOffset(t, data)
	if tailStart <= 0 || tailStart >= len(data) {
		t.Fatalf("bad tail offset %d of %d", tailStart, len(data))
	}

	clone := func(t *testing.T, mutate func(path string)) string {
		t.Helper()
		dir := t.TempDir()
		ents, err := os.ReadDir(srcDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			b, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, e.Name()), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		mutate(filepath.Join(dir, filepath.Base(last)))
		return dir
	}

	check := func(t *testing.T, dir, want string, wantTruncated bool) {
		t.Helper()
		re, err := sch.OpenDurableStore(dir, DurableOptions{NoFsync: true})
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		defer re.Close()
		if got := re.Snapshot().String(); got != want {
			t.Fatalf("recovered wrong state:\n--- got ---\n%s\n--- want ---\n%s", got, want)
		}
		if rec := re.Recovery(); wantTruncated && rec.TruncatedBytes == 0 {
			t.Fatalf("expected tail truncation, stats %+v", rec)
		}
		assertLocallyConsistent(t, sch, re)
	}

	// Sanity: an unmutated clone recovers the full state.
	check(t, clone(t, func(string) {}), wantFull, false)

	for cut := tailStart; cut < len(data); cut++ {
		dir := clone(t, func(path string) {
			if err := os.Truncate(path, int64(cut)); err != nil {
				t.Fatal(err)
			}
		})
		check(t, dir, wantPrefix, cut > tailStart)
	}
	for off := tailStart; off < len(data); off++ {
		dir := clone(t, func(path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[off] ^= 0xff
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		})
		check(t, dir, wantPrefix, true)
	}
}

// tailFrameOffset walks a segment's frames and returns the offset of the
// last one.
func tailFrameOffset(t *testing.T, data []byte) int {
	t.Helper()
	const segHeader, frameHeader = 16, 8
	off := segHeader
	lastStart := -1
	for off < len(data) {
		if off+frameHeader > len(data) {
			t.Fatalf("segment ends mid-header at %d", off)
		}
		n := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		lastStart = off
		off += frameHeader + n
	}
	if off != len(data) {
		t.Fatalf("segment frames end at %d of %d", off, len(data))
	}
	return lastStart
}

// TestDurableChasePath runs the durable store over a NON-independent
// schema: records replay through the serialized chase maintainer instead
// of the guards.
func TestDurableChasePath(t *testing.T) {
	dir := t.TempDir()
	sch := MustParse("CD(C,D); CT(C,T); TD(T,D)", "C -> D; C -> T; T -> D")
	ds, err := sch.OpenDurableStore(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ds.FastPath() {
		t.Fatal("Example 1 must not take the fast path")
	}
	if err := ds.Insert("CD", map[string]string{"C": "CS402", "D": "CS"}); err != nil {
		t.Fatal(err)
	}
	if err := ds.Insert("CT", map[string]string{"C": "CS402", "T": "Jones"}); err != nil {
		t.Fatal(err)
	}
	// The paper's anomaly: locally fine, globally contradictory.
	if err := ds.Insert("TD", map[string]string{"T": "Jones", "D": "EE"}); !Rejected(err) {
		t.Fatalf("anomalous insert must be rejected, got %v", err)
	}
	want := ds.Snapshot().String()
	ds.unlock() // simulate process death; see TestKillRestartStarWorkload

	re, err := sch.OpenDurableStore(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer re.Close()
	if got := re.Snapshot().String(); got != want {
		t.Fatalf("chase-path recovery differs:\n%s\nvs\n%s", got, want)
	}
	if re.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", re.Rows())
	}
}

// TestDurableConcurrentStress drives concurrent writers against the
// durable store (fsync off to keep the race build quick) and verifies the
// recovered state matches exactly.
func TestDurableConcurrentStress(t *testing.T) {
	dir := t.TempDir()
	sch := starSchema(t, 4, 2)
	ds, err := sch.OpenDurableStore(dir, DurableOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	const workers, each = 6, 120
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < each; i++ {
				d := 1 + r.Intn(4)
				seed := w*each + i
				row := map[string]string{
					fmt.Sprintf("K%d", d):   fmt.Sprintf("k%d-%d", d, seed),
					fmt.Sprintf("D%d_1", d): fmt.Sprintf("a%d", seed),
					fmt.Sprintf("D%d_2", d): fmt.Sprintf("b%d", seed),
				}
				if err := ds.Insert(fmt.Sprintf("DIM%d", d), row); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	wantRows := ds.Rows()

	re, err := sch.OpenDurableStore(dir, DurableOptions{NoFsync: true})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer re.Close()
	if re.Rows() != wantRows {
		t.Fatalf("recovered %d rows, want %d", re.Rows(), wantRows)
	}
	if rec := re.Recovery(); rec.Skipped != 0 {
		t.Fatalf("skipped records on clean log: %+v", rec)
	}
	assertLocallyConsistent(t, sch, re)
	// Set equality (order across relations may differ under concurrency):
	// every live tuple is present in the recovered store.
	live := ds.Snapshot()
	recd := re.Snapshot()
	for _, rel := range sch.Relations() {
		lt, err := live.Tuples(rel)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := recd.Tuples(rel)
		if err != nil {
			t.Fatal(err)
		}
		if len(lt) != len(rt) {
			t.Fatalf("%s: %d vs %d tuples", rel, len(lt), len(rt))
		}
		seen := make(map[string]bool, len(rt))
		for _, row := range rt {
			seen[fmt.Sprint(row)] = true
		}
		for _, row := range lt {
			if !seen[fmt.Sprint(row)] {
				t.Fatalf("%s: tuple %v lost in recovery", rel, row)
			}
		}
	}
}

// TestDurableWriteAfterClose verifies the log failure surfaces to callers.
func TestDurableWriteAfterClose(t *testing.T) {
	dir := t.TempDir()
	sch := starSchema(t, 2, 1)
	ds, err := sch.OpenDurableStore(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	err = ds.Insert("DIM1", map[string]string{"K1": "x", "D1_1": "y"})
	if err == nil {
		t.Fatal("insert after Close must fail")
	}
	if !DurabilityFailed(err) {
		t.Fatalf("want a durability failure, got %v", err)
	}
	if Rejected(err) {
		t.Fatalf("durability failure must not read as a constraint rejection: %v", err)
	}
}

// TestWALDepthVisible checks the stats plumbing the daemon exposes.
func TestWALDepthVisible(t *testing.T) {
	dir := t.TempDir()
	sch := starSchema(t, 2, 1)
	ds, err := sch.OpenDurableStore(dir, DurableOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	if err := ds.InsertBatch(starBatch(sch, 2, 90)); err != nil {
		t.Fatal(err)
	}
	st := ds.WAL()
	if st.Records == 0 || st.TotalBytes == 0 || st.Segments == 0 {
		t.Fatalf("WAL stats empty: %+v", st)
	}
}

// TestDurableDirLock verifies two live stores cannot share a directory.
func TestDurableDirLock(t *testing.T) {
	dir := t.TempDir()
	sch := starSchema(t, 2, 1)
	ds, err := sch.OpenDurableStore(dir, DurableOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sch.OpenDurableStore(dir, DurableOptions{NoFsync: true}); err == nil {
		t.Fatal("second open of a live directory must fail")
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := sch.OpenDurableStore(dir, DurableOptions{NoFsync: true})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	re.Close()
}
