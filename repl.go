package indep

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"indep/internal/relation"
	"indep/internal/wal"
)

// This file is the primary side of WAL-streaming replication. The paper's
// independence theorem is what makes replication almost free: admission is
// a purely local decision, so a replica replaying the primary's redo log
// through the same guards — idempotently, with re-rejected records skipped
// — converges to the primary's representative instance. The primary
// therefore needs no replication-specific bookkeeping at all: it serves
// (1) raw flushed WAL bytes by Position and (2) an encoded checkpoint of
// its current state for catch-up, both derived from machinery that already
// exists for durability.

// ReplChunk is one unit of the replication stream: raw segment bytes
// starting at Start, the position to request next, and the primary's
// flushed end at serve time (the follower's lag reference).
type ReplChunk struct {
	Start   wal.Position
	Data    []byte
	Next    wal.Position
	Flushed wal.Position
}

// ReplSource is what a Follower tails: a primary's log, reachable either
// in-process (DurableStore implements this) or over HTTP (HTTPReplSource).
// The fault-injection harness wraps a source to corrupt, truncate,
// duplicate, and drop chunks — the follower must converge regardless.
type ReplSource interface {
	// ReplSnapshot returns an encoded checkpoint of the source's current
	// state (wal.DecodeCheckpointBytes decodes it) and the log position to
	// tail from once it is installed.
	ReplSnapshot() (data []byte, tail wal.Position, err error)
	// ReplRead serves flushed log bytes from pos, up to max (0 means a
	// sensible default). It returns wal.ErrSegmentGone when the position
	// has been truncated away and the follower must re-sync.
	ReplRead(pos wal.Position, max int) (ReplChunk, error)
}

// ReplSnapshot implements ReplSource: it cuts a consistent snapshot with a
// log rotation at the cut (the same cut Checkpoint uses) and returns it
// encoded, without writing anything to disk or truncating the log. The
// returned tail position is the start of the segment opened at the cut:
// the snapshot plus the stream from tail reproduces every later state.
func (ds *DurableStore) ReplSnapshot() ([]byte, wal.Position, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.closed {
		return nil, wal.Position{}, fmt.Errorf("indep: store is closed")
	}
	var seq uint64
	st := ds.eng.SnapshotWith(func() { seq = ds.log.Rotate() })
	return wal.NewCheckpoint(seq, st).Encode(), wal.Position{Seq: seq}, nil
}

// ReplRead implements ReplSource by reading flushed bytes straight out of
// the log's segments. Only bytes the log has flushed (and fsynced, under
// the default sync mode) are served, so a follower can never apply a
// record the primary might lose in a crash.
func (ds *DurableStore) ReplRead(pos wal.Position, max int) (ReplChunk, error) {
	data, next, err := ds.log.ReadAt(pos, max)
	if err != nil {
		return ReplChunk{}, err
	}
	return ReplChunk{Start: pos, Data: data, Next: next, Flushed: ds.log.Flushed()}, nil
}

// ReplPosition returns the log's flushed end: the read-your-writes token a
// client holds after a durable write. A follower whose applied position has
// reached this value reflects every write acknowledged before the call.
func (ds *DurableStore) ReplPosition() wal.Position { return ds.log.Flushed() }

// DiffDatabasesByName compares two database states by value *names* rather
// than interned ids: it returns a description of every tuple present in
// one and not the other (nil means the visible states agree). Replication
// uses the stricter DiffDatabases — a follower replays the primary's exact
// intern stream, so even the ids must match — but a cluster's gathered
// state interns values in whatever order fragments arrive, and only the
// named contents are contractually equal to a single node's.
func DiffDatabasesByName(a, b *Database) []string {
	var diffs []string
	if len(a.st.Insts) != len(b.st.Insts) {
		return []string{fmt.Sprintf("relation counts differ: %d vs %d", len(a.st.Insts), len(b.st.Insts))}
	}
	render := func(db *Database, t relation.Tuple) string {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = db.st.Dict.Name(v)
		}
		return "(" + strings.Join(parts, ",") + ")"
	}
	for i := range a.st.Insts {
		name := a.schema.s.Name(i)
		am := make(map[string]bool, a.st.Insts[i].Len())
		for _, t := range a.st.Insts[i].Rows() {
			am[render(a, t)] = true
		}
		bm := make(map[string]bool, b.st.Insts[i].Len())
		for _, t := range b.st.Insts[i].Rows() {
			bm[render(b, t)] = true
		}
		for k := range am {
			if !bm[k] {
				diffs = append(diffs, fmt.Sprintf("%s: %s only in first", name, k))
			}
		}
		for k := range bm {
			if !am[k] {
				diffs = append(diffs, fmt.Sprintf("%s: %s only in second", name, k))
			}
		}
	}
	sort.Strings(diffs)
	return diffs
}

// tupleKey renders a tuple as a comparable map key (raw values, fixed
// width), for the set diffs the oracle and the follower's re-sync share.
func tupleKey(t relation.Tuple) string {
	b := make([]byte, 8*len(t))
	for i, v := range t {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return string(b)
}

// DiffDatabases is the divergence oracle: it compares two database states
// tuple-for-tuple and binding-for-binding and returns a human-readable
// description of every difference (nil means the states are identical).
// Replication's correctness claim is exactly "this returns nil between
// primary and any caught-up follower, after any fault schedule".
func DiffDatabases(a, b *Database) []string {
	var diffs []string
	if len(a.st.Insts) != len(b.st.Insts) {
		return []string{fmt.Sprintf("relation counts differ: %d vs %d", len(a.st.Insts), len(b.st.Insts))}
	}
	render := func(db *Database, t relation.Tuple) string {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = db.st.Dict.Name(v) // nil-safe: falls back to numerals
		}
		return "(" + strings.Join(parts, ",") + ")"
	}
	for i := range a.st.Insts {
		name := a.schema.s.Name(i)
		am := make(map[string]relation.Tuple, a.st.Insts[i].Len())
		for _, t := range a.st.Insts[i].Rows() {
			am[tupleKey(t)] = t
		}
		bm := make(map[string]relation.Tuple, b.st.Insts[i].Len())
		for _, t := range b.st.Insts[i].Rows() {
			bm[tupleKey(t)] = t
		}
		for k, t := range am {
			if _, ok := bm[k]; !ok {
				diffs = append(diffs, fmt.Sprintf("%s: %s only in first", name, render(a, t)))
			}
		}
		for k, t := range bm {
			if _, ok := am[k]; !ok {
				diffs = append(diffs, fmt.Sprintf("%s: %s only in second", name, render(b, t)))
			}
		}
	}
	// Bindings must agree wherever both sides define a value; a value bound
	// on one side only is fine (interns race ahead of the tuples that use
	// them) — tuple equality above already proves no *used* value differs.
	if a.st.Dict != nil && b.st.Dict != nil {
		an := make(map[relation.Value]string)
		a.st.Dict.Each(func(v relation.Value, name string) { an[v] = name })
		b.st.Dict.Each(func(v relation.Value, name string) {
			if prev, ok := an[v]; ok && prev != name {
				diffs = append(diffs, fmt.Sprintf("value %d named %q vs %q", int64(v), prev, name))
			}
		})
	}
	sort.Strings(diffs)
	return diffs
}
