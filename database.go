package indep

import (
	"errors"
	"fmt"

	"indep/internal/attrset"
	"indep/internal/chase"
	"indep/internal/infer"
	"indep/internal/maintenance"
	"indep/internal/query"
	"indep/internal/relation"
	"indep/internal/schema"
)

// rowTuple resolves a named row (attribute name → value name) into a scheme
// index and a tuple, interning values through intern. All attributes of the
// scheme must be present. Shared by every row-accepting entry point.
func rowTuple(s *schema.Schema, intern func(string) relation.Value, rel string, row map[string]string) (int, relation.Tuple, error) {
	i := s.IndexOf(rel)
	if i < 0 {
		return -1, nil, fmt.Errorf("indep: unknown relation %q", rel)
	}
	attrs := s.Attrs(i).Attrs()
	t := make(relation.Tuple, len(attrs))
	for j, a := range attrs {
		name := s.U.Name(a)
		v, ok := row[name]
		if !ok {
			return -1, nil, fmt.Errorf("indep: missing value for attribute %s of %s", name, rel)
		}
		t[j] = intern(v)
	}
	return i, t, nil
}

// attrSetT is the attribute-set representation shared with the internal
// packages.
type attrSetT = attrset.Set

// Database is a database state over a Schema, with named values.
type Database struct {
	schema *Schema
	st     *relation.State
	// qev, when set, is the window evaluator the state originated from
	// (store snapshots carry their store's, sharing its plan cache); nil
	// falls back to the schema-wide evaluator. See Database.Query.
	qev *query.Evaluator
}

// NewDatabase creates an empty database state.
func (s *Schema) NewDatabase() *Database {
	return &Database{schema: s, st: relation.NewState(s.s)}
}

// Insert adds a row (attribute name → value name) to the named relation
// without any consistency checking; use Satisfies/SatisfiesLocally to test,
// or a Store for maintained inserts. All attributes of the relation scheme
// must be present.
func (db *Database) Insert(rel string, row map[string]string) error {
	i, t, err := rowTuple(db.st.Schema, db.st.Dict.Value, rel, row)
	if err != nil {
		return err
	}
	db.st.Insts[i].Add(t)
	return nil
}

// Rows returns the number of tuples across all relations.
func (db *Database) Rows() int { return db.st.TupleCount() }

// Tuples returns the rows of the named relation as attribute-name →
// value-name maps, in no particular order.
func (db *Database) Tuples(rel string) ([]map[string]string, error) {
	i := db.st.Schema.IndexOf(rel)
	if i < 0 {
		return nil, fmt.Errorf("indep: unknown relation %q", rel)
	}
	attrs := db.st.Schema.Attrs(i).Attrs()
	out := make([]map[string]string, 0, db.st.Insts[i].Len())
	for _, t := range db.st.Insts[i].Rows() {
		row := make(map[string]string, len(attrs))
		for j, a := range attrs {
			row[db.st.Schema.U.Name(a)] = db.st.Dict.Name(t[j])
		}
		out = append(out, row)
	}
	return out, nil
}

// String renders the state with named values.
func (db *Database) String() string { return db.st.String() }

// Satisfies reports whether the state satisfies F ∪ {*D} in the
// weak-instance sense, by running the chase on the padded universal
// relation. An error means the chase budget was exhausted (possible only
// for adversarial non-embedded dependency sets).
func (db *Database) Satisfies() (bool, error) {
	jd := needsJD(db.schema)
	return chase.Satisfies(db.st, db.schema.fds, jd, chase.DefaultCaps)
}

// SatisfiesLocally reports whether every relation is consistent in
// isolation (r_i ∈ SAT(R_i, Σ_i)); on failure it names the first
// inconsistent relation.
func (db *Database) SatisfiesLocally() (bool, string, error) {
	jd := needsJD(db.schema)
	ok, bad, err := chase.LocallySatisfies(db.st, db.schema.fds, jd, chase.DefaultCaps)
	if err != nil {
		return false, "", err
	}
	if ok {
		return true, "", nil
	}
	return false, db.st.Schema.Name(bad), nil
}

// needsJD reports whether the chase must apply the join-dependency rule:
// by the paper's Lemma 4, embedded FDs make it unnecessary.
func needsJD(s *Schema) bool { return !infer.AllEmbedded(s.s, s.fds) }

// ErrRejected wraps insert rejections from a Store.
var ErrRejected = maintenance.ErrViolation

// Store is a maintained database: every insert is validated so the state
// always satisfies F ∪ {*D}. For independent schemas validation is a
// per-relation FD check in O(|F_i|) (the paper's motivating payoff); for
// other schemas every insert re-runs the chase.
type Store struct {
	schema *Schema
	m      maintenance.Maintainer
	dict   *relation.Dict
	fast   bool
}

// OpenStore analyzes the schema and opens an empty maintained database.
func (s *Schema) OpenStore() (*Store, error) {
	m, fast, err := maintenance.ForSchema(s.s, s.fds, chase.DefaultCaps)
	if err != nil {
		return nil, err
	}
	return &Store{schema: s, m: m, dict: m.State().Dict, fast: fast}, nil
}

// FastPath reports whether the store uses the independent-schema guard
// (true) or chase-based maintenance (false).
func (st *Store) FastPath() bool { return st.fast }

// Insert validates and adds a row. A rejected insert leaves the state
// unchanged and returns an error wrapping ErrRejected.
func (st *Store) Insert(rel string, row map[string]string) error {
	i, t, err := rowTuple(st.m.State().Schema, st.dict.Value, rel, row)
	if err != nil {
		return err
	}
	return st.m.Insert(i, t)
}

// Rejected reports whether an Insert error means the row was rejected as
// inconsistent (as opposed to malformed input).
func Rejected(err error) bool { return errors.Is(err, maintenance.ErrViolation) }

// Overloaded reports whether an error means the chase exhausted its budget
// — a server-side resource limit, not a verdict on the row. Possible only
// on the non-independent maintenance path with non-embedded FDs.
func Overloaded(err error) bool { return errors.Is(err, chase.ErrBudget) }

// Rows returns the number of tuples across all relations.
func (st *Store) Rows() int { return st.m.State().TupleCount() }

// String renders the store's state.
func (st *Store) String() string { return st.m.State().String() }
