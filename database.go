package indep

import (
	"errors"
	"fmt"

	"indep/internal/attrset"
	"indep/internal/chase"
	"indep/internal/maintenance"
	"indep/internal/relation"
)

// attrSetT is the attribute-set representation shared with the internal
// packages.
type attrSetT = attrset.Set

// Database is a database state over a Schema, with named values.
type Database struct {
	schema *Schema
	st     *relation.State
}

// NewDatabase creates an empty database state.
func (s *Schema) NewDatabase() *Database {
	return &Database{schema: s, st: relation.NewState(s.s)}
}

// Insert adds a row (attribute name → value name) to the named relation
// without any consistency checking; use Satisfies/SatisfiesLocally to test,
// or a Store for maintained inserts. All attributes of the relation scheme
// must be present.
func (db *Database) Insert(rel string, row map[string]string) error {
	i := db.st.Schema.IndexOf(rel)
	if i < 0 {
		return fmt.Errorf("indep: unknown relation %q", rel)
	}
	attrs := db.st.Schema.Attrs(i).Attrs()
	t := make(relation.Tuple, len(attrs))
	for j, a := range attrs {
		name := db.st.Schema.U.Name(a)
		v, ok := row[name]
		if !ok {
			return fmt.Errorf("indep: missing value for attribute %s of %s", name, rel)
		}
		t[j] = db.st.Dict.Value(v)
	}
	db.st.Insts[i].Add(t)
	return nil
}

// Rows returns the number of tuples across all relations.
func (db *Database) Rows() int { return db.st.TupleCount() }

// String renders the state with named values.
func (db *Database) String() string { return db.st.String() }

// Satisfies reports whether the state satisfies F ∪ {*D} in the
// weak-instance sense, by running the chase on the padded universal
// relation. An error means the chase budget was exhausted (possible only
// for adversarial non-embedded dependency sets).
func (db *Database) Satisfies() (bool, error) {
	jd := needsJD(db.schema)
	return chase.Satisfies(db.st, db.schema.fds, jd, chase.DefaultCaps)
}

// SatisfiesLocally reports whether every relation is consistent in
// isolation (r_i ∈ SAT(R_i, Σ_i)); on failure it names the first
// inconsistent relation.
func (db *Database) SatisfiesLocally() (bool, string, error) {
	jd := needsJD(db.schema)
	ok, bad, err := chase.LocallySatisfies(db.st, db.schema.fds, jd, chase.DefaultCaps)
	if err != nil {
		return false, "", err
	}
	if ok {
		return true, "", nil
	}
	return false, db.st.Schema.Name(bad), nil
}

// needsJD reports whether the chase must apply the join-dependency rule:
// by the paper's Lemma 4, embedded FDs make it unnecessary.
func needsJD(s *Schema) bool {
	for _, f := range s.fds {
		if !s.s.Embeds(f.Attrs()) {
			return true
		}
	}
	return false
}

// ErrRejected wraps insert rejections from a Store.
var ErrRejected = maintenance.ErrViolation

// Store is a maintained database: every insert is validated so the state
// always satisfies F ∪ {*D}. For independent schemas validation is a
// per-relation FD check in O(|F_i|) (the paper's motivating payoff); for
// other schemas every insert re-runs the chase.
type Store struct {
	schema *Schema
	m      maintenance.Maintainer
	dict   *relation.Dict
	fast   bool
}

// OpenStore analyzes the schema and opens an empty maintained database.
func (s *Schema) OpenStore() (*Store, error) {
	m, fast, err := maintenance.ForSchema(s.s, s.fds, chase.DefaultCaps)
	if err != nil {
		return nil, err
	}
	return &Store{schema: s, m: m, dict: m.State().Dict, fast: fast}, nil
}

// FastPath reports whether the store uses the independent-schema guard
// (true) or chase-based maintenance (false).
func (st *Store) FastPath() bool { return st.fast }

// Insert validates and adds a row. A rejected insert leaves the state
// unchanged and returns an error wrapping ErrRejected.
func (st *Store) Insert(rel string, row map[string]string) error {
	i := st.m.State().Schema.IndexOf(rel)
	if i < 0 {
		return fmt.Errorf("indep: unknown relation %q", rel)
	}
	attrs := st.m.State().Schema.Attrs(i).Attrs()
	t := make(relation.Tuple, len(attrs))
	for j, a := range attrs {
		name := st.m.State().Schema.U.Name(a)
		v, ok := row[name]
		if !ok {
			return fmt.Errorf("indep: missing value for attribute %s of %s", name, rel)
		}
		t[j] = st.dict.Value(v)
	}
	return st.m.Insert(i, t)
}

// Rejected reports whether an Insert error means the row was rejected as
// inconsistent (as opposed to malformed input).
func Rejected(err error) bool { return errors.Is(err, maintenance.ErrViolation) }

// Rows returns the number of tuples across all relations.
func (st *Store) Rows() int { return st.m.State().TupleCount() }

// String renders the store's state.
func (st *Store) String() string { return st.m.State().String() }
