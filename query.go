package indep

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"indep/internal/chase"
	"indep/internal/engine"
	"indep/internal/independence"
	"indep/internal/obs"
	"indep/internal/query"
	"indep/internal/relation"
)

// WindowQuery describes a window query: the X-total projection of the
// representative instance for the attribute set Attrs, optionally filtered,
// projected, and truncated. Windows are the weak-instance answer to "what
// does the database say about these attributes?": a row appears iff the
// state, plus everything the dependencies force, determines a value for
// every requested attribute.
type WindowQuery struct {
	// Attrs is the window attribute set X (required, any attributes of the
	// universe — they need not lie in one relation).
	Attrs []string
	// Where keeps only rows whose attribute equals the named value. Keys
	// must be attributes of Attrs; a value the store has never seen matches
	// nothing.
	Where map[string]string
	// Project, when non-empty, projects the filtered window onto this
	// subset of Attrs (duplicates collapse).
	Project []string
	// Limit, when positive, caps the number of returned rows (applied after
	// filtering, projection, and sorting, so results are deterministic).
	Limit int
	// Explain, when set, attaches the executed plan to the result: fast path
	// vs chase, plan-cache hit, per-relation rows scanned, pruned relations,
	// and (on a store) snapshot reuse. The query still runs normally.
	Explain bool
	// BinaryResult, when set, skips the rendered Rows maps and emits the
	// result as the length-prefixed binary encoding instead (WindowResult.Bin,
	// decoded by DecodeWindowBinary) — the shape the daemon serves under
	// Accept: application/x-indep-bin. Rows is nil on such a result.
	BinaryResult bool
}

// RelationScan is one relation a window evaluation consulted, with the
// number of live tuples it scanned.
type RelationScan struct {
	Relation string `json:"relation"`
	Rows     int    `json:"rows"`
}

// WindowExplain describes the plan a window query actually executed. The
// same facts are recorded as span attributes on traced requests, so a
// flight-recorder trace and an explain=1 response can never disagree.
type WindowExplain struct {
	// Mode is "fast" (Theorem 5 extension joins, relation-by-relation) or
	// "chase" (padded state chased to the representative instance).
	Mode string `json:"mode"`
	// PlanCached reports the compiled plan came from the evaluator's cache.
	PlanCached bool `json:"planCached"`
	// SnapshotReused reports the evaluation ran over the cached snapshot
	// without taking any lock (always false for a plain Database query,
	// which has no snapshot cache).
	SnapshotReused bool `json:"snapshotReused"`
	// StoreVersion is the store mutation version the snapshot reflects
	// (0 for a plain Database query).
	StoreVersion uint64 `json:"storeVersion"`
	// Relations lists the relations the evaluation consulted with their
	// scanned row counts. The chase consults the whole state.
	Relations []RelationScan `json:"relations"`
	// Pruned lists relations the planner ruled out because the window is
	// not a subset of their extension closure (fast path only).
	Pruned []string `json:"pruned,omitempty"`
}

// WindowResult is the outcome of a window query.
type WindowResult struct {
	// Attrs names the output columns — the window's attributes (restricted
	// to Project when given) in universe order, i.e. the order attributes
	// first appear in the schema declaration, not the order they were
	// requested in. Rows are keyed by name, so only positional consumers
	// need to care.
	Attrs []string
	// Rows holds the result as attribute-name → value-name maps, sorted
	// lexicographically by column order for deterministic output.
	Rows []map[string]string
	// Total is the number of window rows after filtering and projection,
	// before Limit.
	Total int
	// FastPath reports relation-by-relation evaluation (independent schema:
	// local extension joins, no global chase).
	FastPath bool
	// PlanCached reports that the compiled plan for Attrs came from the
	// evaluator's cache.
	PlanCached bool
	// Explain is the executed plan, present iff the query set Explain.
	Explain *WindowExplain `json:"explain,omitempty"`
	// Bin is the binary encoding of the result, present iff the query set
	// BinaryResult (Rows is nil then); DecodeWindowBinary parses it.
	Bin []byte `json:"-"`
}

// QueryStats re-exports the engine's query-side counters: window queries
// served, plan-cache hits, fast vs chase evaluations, and how often the
// lock-free snapshot cache could be reused.
type QueryStats = engine.QueryStats

// Window computes the window [attrs] over a consistent snapshot of the
// store. Equivalent to Query(WindowQuery{Attrs: attrs}).
func (cs *ConcurrentStore) Window(attrs ...string) (*WindowResult, error) {
	return cs.Query(WindowQuery{Attrs: attrs})
}

// Query evaluates a window query over a consistent snapshot of the store.
// Evaluation is lock-free: writers are never blocked by a running query,
// and a query never observes a half-applied batch. For an independent
// schema the window is computed relation-by-relation through the extension
// joins of Theorem 5; otherwise the padded state is chased, which can
// exhaust the chase budget (test with Overloaded). Plans are cached per
// attribute set, so repeated windows skip plan compilation.
func (cs *ConcurrentStore) Query(q WindowQuery) (*WindowResult, error) {
	return cs.QueryCtx(context.Background(), q)
}

// QueryCtx is Query with the context's trace ID attached to any slow-query
// log record; a traced context additionally records a store.query span
// whose engine.window child carries the explain attributes.
func (cs *ConcurrentStore) QueryCtx(ctx context.Context, q WindowQuery) (*WindowResult, error) {
	ctx, sp := obs.StartSpan(ctx, "store.query")
	defer sp.End()
	x, err := cs.schema.attrSet(q.Attrs)
	if err != nil {
		return nil, err
	}
	res, st, meta, err := cs.eng.WindowMetaCtx(ctx, x, q.Explain)
	if err != nil {
		return nil, err
	}
	out, err := finishWindow(cs.schema, st, res, q)
	if err != nil {
		return nil, err
	}
	if q.Explain {
		out.Explain = newWindowExplain(meta.Explain, meta.SnapshotReused, meta.Version)
	}
	return out, nil
}

// newWindowExplain converts the evaluator's explain record plus the store's
// snapshot facts into the public shape.
func newWindowExplain(ex *query.Explain, reused bool, version uint64) *WindowExplain {
	if ex == nil {
		return nil
	}
	we := &WindowExplain{
		Mode:           ex.Mode,
		PlanCached:     ex.PlanCached,
		SnapshotReused: reused,
		StoreVersion:   version,
		Relations:      make([]RelationScan, len(ex.Relations)),
		Pruned:         ex.Pruned,
	}
	for i, rs := range ex.Relations {
		we.Relations[i] = RelationScan{Relation: rs.Relation, Rows: rs.Rows}
	}
	return we
}

// QueryStats returns the store's query-side counters.
func (cs *ConcurrentStore) QueryStats() QueryStats { return cs.eng.QueryStats() }

// Window computes the window [attrs] over this database state. Equivalent
// to Query(WindowQuery{Attrs: attrs}).
func (db *Database) Window(attrs ...string) (*WindowResult, error) {
	return db.Query(WindowQuery{Attrs: attrs})
}

// Query evaluates a window query over this database state (for example a
// ConcurrentStore snapshot, or a hand-built state). The state must satisfy
// the dependencies — maintained states and snapshots always do; for a
// hand-built inconsistent state the chase path reports the contradiction
// and the fast path's answers are meaningless. Store snapshots carry their
// store's evaluator (shared plan cache, queries counted in the store's
// QueryStats); other databases share one evaluator per Schema.
func (db *Database) Query(q WindowQuery) (*WindowResult, error) {
	x, err := db.schema.attrSet(q.Attrs)
	if err != nil {
		return nil, err
	}
	ev := db.qev
	if ev == nil {
		if ev, err = db.schema.windowEvaluator(); err != nil {
			return nil, err
		}
	}
	res, err := ev.Window(db.st, x)
	if err != nil {
		return nil, err
	}
	out, err := finishWindow(db.schema, db.st, res, q)
	if err != nil {
		return nil, err
	}
	if q.Explain {
		out.Explain = newWindowExplain(ev.Explain(res, db.st), false, 0)
	}
	return out, nil
}

// windowEvaluator returns the schema's shared window evaluator, running the
// independence decision procedure once on first use.
func (s *Schema) windowEvaluator() (*query.Evaluator, error) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.qev == nil {
		res, err := independence.Decide(s.s, s.fds)
		if err != nil {
			return nil, err
		}
		s.qev = query.NewEvaluator(s.s, s.fds, res, chase.DefaultCaps)
	}
	return s.qev, nil
}

// WindowConsults reports which relations an evaluation of the window [attrs]
// may read. On the independent fast path that is the contributing relations
// plus every relation their extension tableaux take valuations against — the
// exact set a cluster router must gather from shards before it can evaluate
// the window away from the data, because Theorem 5's extensions consult
// those relations and no others. For a non-independent schema it returns
// (nil, false, nil): the fallback chase consults the whole state, so a
// router can only proxy the query to a node holding everything.
func (s *Schema) WindowConsults(attrs ...string) (rels []string, fast bool, err error) {
	x, err := s.attrSet(attrs)
	if err != nil {
		return nil, false, err
	}
	ev, err := s.windowEvaluator()
	if err != nil {
		return nil, false, err
	}
	p, _, err := ev.Plan(x)
	if err != nil {
		return nil, false, err
	}
	if !p.Fast {
		return nil, false, nil
	}
	for _, l := range p.Consults() {
		rels = append(rels, s.s.Name(l))
	}
	return rels, true, nil
}

// finishWindow applies selection, projection, limit, and name rendering to
// a raw window instance, using the dictionary of the state the window was
// evaluated against.
func finishWindow(s *Schema, st *relation.State, res *query.Result, q WindowQuery) (*WindowResult, error) {
	rows := res.Rows

	// Selection: translate names through the dictionary without interning;
	// an unseen value cannot appear in any tuple, so it matches nothing.
	if len(q.Where) > 0 {
		cols := rows.Attrs.Attrs()
		colAt := make(map[int]int, len(cols))
		for i, a := range cols {
			colAt[a] = i
		}
		type cond struct {
			col int
			v   relation.Value
		}
		conds := make([]cond, 0, len(q.Where))
		// Validate every condition before acting on any: an unseen value
		// means an empty result, but must not short-circuit validation of
		// the remaining conditions (map order would make errors flaky).
		empty := false
		for name, val := range q.Where {
			i, ok := s.s.U.Index(name)
			if !ok {
				return nil, fmt.Errorf("indep: unknown attribute %q in Where", name)
			}
			if !res.X.Has(i) {
				return nil, fmt.Errorf("indep: Where attribute %s is not in the window %s",
					name, strings.Join(s.s.U.Names(res.X), " "))
			}
			v, ok := st.Dict.Lookup(val)
			if !ok {
				empty = true
				continue
			}
			conds = append(conds, cond{col: colAt[i], v: v})
		}
		filtered := relation.NewInstance(rows.Attrs)
		if !empty {
			var scratch relation.Tuple
			for _, slot := range rows.LiveRows() {
				ok := true
				for _, c := range conds {
					if rows.At(slot, c.col) != c.v {
						ok = false
						break
					}
				}
				if ok {
					scratch = rows.AppendRow(scratch[:0], slot)
					filtered.Add(scratch)
				}
			}
		}
		rows = filtered
	}

	// Projection: collapse onto a subset of the window attributes.
	outAttrs := res.X
	if len(q.Project) > 0 {
		y, err := s.attrSet(q.Project)
		if err != nil {
			return nil, err
		}
		if !y.SubsetOf(res.X) {
			return nil, fmt.Errorf("indep: projection %s is not a subset of the window %s",
				strings.Join(s.s.U.Names(y), " "), strings.Join(s.s.U.Names(res.X), " "))
		}
		rows = rows.Project(y)
		outAttrs = y
	}

	// Sort by rendered value key for determinism, then render only the
	// rows the limit keeps — a limit-5 query over a million-row window
	// should not allocate a million maps.
	names := s.s.U.Names(outAttrs)
	out := &WindowResult{
		Attrs:      names,
		Total:      rows.Len(),
		FastPath:   res.Fast,
		PlanCached: res.PlanCached,
	}
	slots := rows.LiveRows()
	keys := make([]string, len(slots))
	order := make([]int, len(slots))
	for i, slot := range slots {
		var k strings.Builder
		for j := range names {
			k.WriteString(st.Dict.Name(rows.At(slot, j)))
			k.WriteByte(0)
		}
		keys[i] = k.String()
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	n := len(order)
	if q.Limit > 0 && n > q.Limit {
		n = q.Limit
	}
	if q.BinaryResult {
		out.Bin = encodeWindowBinary(st.Dict, names, n, func(i, j int) relation.Value {
			return rows.At(slots[order[i]], j)
		}, out.Total, out.FastPath, out.PlanCached)
		return out, nil
	}
	rendered := make([]map[string]string, n)
	for i := 0; i < n; i++ {
		slot := slots[order[i]]
		row := make(map[string]string, len(names))
		for j, name := range names {
			row[name] = st.Dict.Name(rows.At(slot, j))
		}
		rendered[i] = row
	}
	out.Rows = rendered
	return out, nil
}
