package indep

// One benchmark per experiment in DESIGN.md's index. The paper has no
// numeric tables (it is a theory paper); these benchmarks regenerate the
// executable artifacts: the worked examples, the decision procedure's
// polynomial scaling, the maintenance fast path vs the chase, the
// Theorem 1 reduction, and the acyclic-schema machinery. The table-form
// outputs live in cmd/indepbench; EXPERIMENTS.md records both.

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"indep/internal/acyclic"
	"indep/internal/attrset"
	"indep/internal/chase"
	"indep/internal/engine"
	"indep/internal/fd"
	"indep/internal/independence"
	"indep/internal/infer"
	"indep/internal/maintenance"
	"indep/internal/relation"
	"indep/internal/schema"
	"indep/internal/workload"
)

// --- E1/E2/E3: the paper's worked examples -------------------------------

func BenchmarkExample1Decide(b *testing.B) {
	s, fds := workload.Example1()
	for i := 0; i < b.N; i++ {
		if res, err := independence.Decide(s, fds); err != nil || res.Independent {
			b.Fatal("Example 1 must reject")
		}
	}
}

func BenchmarkExample1Chase(b *testing.B) {
	st, fds := workload.Example1State()
	for i := 0; i < b.N; i++ {
		ok, err := chase.Satisfies(st, fds, true, chase.DefaultCaps)
		if err != nil || ok {
			b.Fatal("Example 1 state must not satisfy")
		}
	}
}

func BenchmarkExample2Decide(b *testing.B) {
	s, fds := workload.Example2()
	for i := 0; i < b.N; i++ {
		if res, err := independence.Decide(s, fds); err != nil || !res.Independent {
			b.Fatal("Example 2 must accept")
		}
	}
}

func BenchmarkExample3Decide(b *testing.B) {
	s, fds := workload.Example3()
	for i := 0; i < b.N; i++ {
		if res, err := independence.Decide(s, fds); err != nil || res.Independent {
			b.Fatal("Example 3 must reject")
		}
	}
}

// --- T2/P1: polynomial scaling of the decision procedure ------------------

func chainWithKeys(n int) (*schema.Schema, fd.List) {
	u := attrset.NewUniverse()
	for i := 0; i < n; i++ {
		u.Add(fmt.Sprintf("A%d", i))
	}
	var rels []schema.Rel
	var fds fd.List
	for i := 0; i+1 < n; i++ {
		rels = append(rels, schema.Rel{Name: fmt.Sprintf("R%d", i), Attrs: attrset.Of(i, i+1)})
		fds = append(fds, fd.FD{LHS: attrset.Of(i), RHS: attrset.Of(i + 1)})
	}
	return schema.New(u, rels...), fds
}

func BenchmarkAnalyzeScaling(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		s, fds := chainWithKeys(n)
		b.Run(fmt.Sprintf("attrs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if res, err := independence.Decide(s, fds); err != nil || !res.Independent {
					b.Fatal("chain must be independent")
				}
			}
		})
	}
}

func BenchmarkCoverEmbedding(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		s, fds := chainWithKeys(n)
		b.Run(fmt.Sprintf("attrs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok, _ := infer.ExtractCover(s, fds); !ok {
					b.Fatal("chain embeds its cover")
				}
			}
		})
	}
}

func BenchmarkClosureJD(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		s, fds := chainWithKeys(n)
		x := attrset.Of(0)
		b.Run(fmt.Sprintf("attrs=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := infer.Closure(s, fds, x); got.Len() != n {
					b.Fatal("closure of A0 must be the whole chain")
				}
			}
		})
	}
}

// --- M1: maintenance fast path vs chase -----------------------------------

func BenchmarkGuardInsert(b *testing.B) {
	s, fds := workload.Example2()
	res, _ := independence.Decide(s, fds)
	g := maintenance.NewGuard(s, res.Cover)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := relation.Value(i)
		if err := g.Insert(0, relation.Tuple{c, c + 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGuardReject measures the rejection path: the verify phase plus
// the precomputed violation error, which together allocate nothing.
func BenchmarkGuardReject(b *testing.B) {
	s, fds := workload.Example2()
	res, _ := independence.Decide(s, fds)
	g := maintenance.NewGuard(s, res.Cover)
	if err := g.Insert(0, relation.Tuple{1, 10}); err != nil {
		b.Fatal(err)
	}
	bad := relation.Tuple{1, 11} // same C, different T: violates C→T
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Insert(0, bad); err == nil {
			b.Fatal("want violation")
		}
	}
}

// BenchmarkInstanceOps pins the relation-layer floor the maintainers sit
// on: membership probes and duplicate adds over the hashed primary index.
func BenchmarkInstanceOps(b *testing.B) {
	in := relation.NewInstance(attrset.Of(0, 1, 2))
	for i := 0; i < 4096; i++ {
		in.Add(relation.Tuple{relation.Value(i), relation.Value(i % 17), relation.Value(i % 5)})
	}
	probe := relation.Tuple{100, 100 % 17, 0}
	b.Run("has", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !in.Has(probe) {
				b.Fatal("probe must be present")
			}
		}
	})
	b.Run("add-dup", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if in.Add(probe) {
				b.Fatal("probe must be a duplicate")
			}
		}
	})
}

func BenchmarkChaseMaintainerInsert(b *testing.B) {
	for _, base := range []int{32, 256} {
		b.Run(fmt.Sprintf("state=%d", base), func(b *testing.B) {
			s, fds := workload.Example2()
			m := maintenance.NewChaseMaintainer(s, fds, false, chase.DefaultCaps)
			for i := 0; i < base; i++ {
				c := relation.Value(i)
				if err := m.Insert(0, relation.Tuple{c, c + 1}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := relation.Value(base + i)
				if err := m.Insert(0, relation.Tuple{c, c + 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T1: the Theorem 1 reduction -------------------------------------------

func BenchmarkMaintenanceReduction(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	for _, k := range []int{3, 5} {
		u := attrset.NewUniverse()
		for i := 0; i <= k; i++ {
			u.Add(fmt.Sprintf("X%d", i))
		}
		inst := relation.NewInstance(u.All())
		for i := 0; i < 3*k; i++ {
			t := make(relation.Tuple, k+1)
			for c := range t {
				t[c] = relation.Value(r.Intn(3))
			}
			inst.Add(t)
		}
		var schemes []attrset.Set
		for i := 0; i < k; i++ {
			schemes = append(schemes, attrset.Of(i, i+1))
		}
		x := attrset.Of(0, k)
		tu := relation.Tuple{0, 1}
		red, err := maintenance.BuildReduction(u, inst, schemes, x, tu)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p2 := red.P.Clone()
				p2.Insts[red.Last].Add(red.Inserted)
				if _, err := chase.Satisfies(p2, red.FDs, true, chase.Caps{MaxRows: 500000, MaxIters: 50000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- A1: acyclic machinery --------------------------------------------------

func BenchmarkFullReduce(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	s := schema.MustParse("R1(A,B); R2(B,C); R3(C,D); R4(D,E)")
	st := relation.NewState(s)
	for i := 0; i < 500; i++ {
		for j := range s.Rels {
			st.Insts[j].Add(relation.Tuple{relation.Value(r.Intn(300)), relation.Value(r.Intn(300))})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := acyclic.FullReduce(st); !ok {
			b.Fatal("chain is acyclic")
		}
	}
}

func BenchmarkJoinConsistency(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	s := schema.MustParse("R1(A,B); R2(B,C); R3(C,D); R4(D,E)")
	st := relation.NewState(s)
	for i := 0; i < 500; i++ {
		for j := range s.Rels {
			st.Insts[j].Add(relation.Tuple{relation.Value(r.Intn(300)), relation.Value(r.Intn(300))})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.JoinConsistent()
	}
}

// --- T3: decision procedure on random instances ----------------------------

func BenchmarkDecideRandom(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	type inst struct {
		s   *schema.Schema
		fds fd.List
	}
	var pool []inst
	for i := 0; i < 64; i++ {
		s, fds := workload.Schema(r, workload.Config{
			Attrs: 8, Schemes: 4, SchemeMax: 4, FDs: 4, LHSMax: 2,
		})
		pool = append(pool, inst{s, fds})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := pool[i%len(pool)]
		if _, err := independence.Decide(in.s, in.fds); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Facade-level quickstart ------------------------------------------------

func BenchmarkFacadeAnalyze(b *testing.B) {
	s := MustParse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R")
	for i := 0; i < b.N; i++ {
		a, err := s.Analyze()
		if err != nil || !a.Independent {
			b.Fatal("Example 2 must be independent")
		}
	}
}

// --- E4: the concurrent engine --------------------------------------------
//
// The paper's payoff made parallel: on an independent schema each relation
// validates behind its own lock stripe, so insert throughput should scale
// with goroutines (compare the Serial and Parallel variants, and run with
// -cpu to vary the goroutine count). Batch inserts amortize striping; the
// batch benchmarks report per-tuple cost.

// engineWorkload builds an independent engine over a generated star or
// chain schema with one key FD per dimension/link scheme.
func engineWorkload(b *testing.B, shape workload.Shape) (*engine.Engine, *schema.Schema) {
	b.Helper()
	r := rand.New(rand.NewSource(7))
	var cfg workload.Config
	switch shape {
	case workload.ShapeStar:
		cfg = workload.Config{Attrs: 25, Schemes: 5, Shape: workload.ShapeStar}
	default:
		cfg = workload.Config{Attrs: 25, SchemeMax: 5, Shape: workload.ShapeChain}
	}
	s, _ := workload.Schema(r, cfg)
	var fds fd.List
	for i := range s.Rels {
		attrs := s.Attrs(i).Attrs()
		if s.Name(i) == "FACT" || len(attrs) < 2 {
			continue
		}
		var rhs attrset.Set
		for _, a := range attrs[1:] {
			rhs.Add(a)
		}
		fds = append(fds, fd.FD{LHS: attrset.Of(attrs[0]), RHS: rhs})
	}
	e, err := engine.New(s, fds, chase.DefaultCaps)
	if err != nil {
		b.Fatal(err)
	}
	if !e.Fast() {
		b.Fatalf("shape %v with per-scheme keys must be independent", shape)
	}
	return e, s
}

// funcTuple builds a tuple whose values are a function of (seed, attribute),
// so any FD is satisfied by construction and distinct seeds never conflict.
func funcTuple(s *schema.Schema, scheme int, seed int64) relation.Tuple {
	attrs := s.Attrs(scheme).Attrs()
	t := make(relation.Tuple, len(attrs))
	for c, a := range attrs {
		t[c] = relation.Value(seed*1000 + int64(a))
	}
	return t
}

func benchmarkEngineShapes(b *testing.B, run func(b *testing.B, e *engine.Engine, s *schema.Schema)) {
	for _, sh := range []struct {
		name  string
		shape workload.Shape
	}{{"star", workload.ShapeStar}, {"chain", workload.ShapeChain}} {
		b.Run(sh.name, func(b *testing.B) {
			e, s := engineWorkload(b, sh.shape)
			b.ResetTimer()
			run(b, e, s)
		})
	}
}

func BenchmarkEngineInsertSerial(b *testing.B) {
	benchmarkEngineShapes(b, func(b *testing.B, e *engine.Engine, s *schema.Schema) {
		n := s.Size()
		for i := 0; i < b.N; i++ {
			scheme := i % n
			if err := e.Insert(scheme, funcTuple(s, scheme, int64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEngineInsertParallel(b *testing.B) {
	benchmarkEngineShapes(b, func(b *testing.B, e *engine.Engine, s *schema.Schema) {
		n := s.Size()
		var seed atomic.Int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := seed.Add(1)
				scheme := int(i) % n
				if err := e.Insert(scheme, funcTuple(s, scheme, i)); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

func BenchmarkEngineInsertBatch(b *testing.B) {
	for _, size := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			e, s := engineWorkload(b, workload.ShapeStar)
			n := s.Size()
			var seed int64
			b.ResetTimer()
			// ns/op is per tuple, not per batch: each iteration admits one
			// tuple's share of a size-tuple batch.
			for i := 0; i < b.N; i += size {
				k := size
				if rem := b.N - i; rem < k {
					k = rem
				}
				ops := make([]engine.Op, k)
				for j := range ops {
					seed++
					scheme := int(seed) % n
					ops[j] = engine.Op{Scheme: scheme, Tuple: funcTuple(s, scheme, seed)}
				}
				if err := e.InsertBatch(ops); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E5: durability -------------------------------------------------------
//
// The WAL's claim is that group commit makes durability cheap: concurrent
// appenders share one fsync, and batches amortize both locking and framing.
// DurableInsert compares sync modes across batch sizes (ns/op is per
// tuple); GroupCommit drives parallel single inserts so the coalescing
// shows up as records-per-fsync in -v output.

func durableStarStore(b *testing.B, noFsync bool) (*DurableStore, []string) {
	b.Helper()
	sch := starSchema(b, 4, 3)
	ds, err := sch.OpenDurableStore(b.TempDir(), DurableOptions{NoFsync: noFsync})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ds.Close() })
	return ds, sch.Relations()
}

// durableRow builds a functionally consistent row for one of the star's
// relations: every value is a pure function of (attribute, seed).
func durableRow(sch *Schema, rel string, seed int64) map[string]string {
	attrs, _ := sch.RelationAttrs(rel)
	row := make(map[string]string, len(attrs))
	for _, a := range attrs {
		row[a] = fmt.Sprintf("%s_%d", a, seed)
	}
	return row
}

// batchInsertLoop drives b.N tuples through insert in size-chunks. The
// durable and in-memory benchmarks share it so the durability-tax ratio
// compares strictly identical work.
func batchInsertLoop(b *testing.B, sch *Schema, rels []string, size int, insert func([]BatchOp) error) {
	var seed int64
	b.ResetTimer()
	for i := 0; i < b.N; i += size {
		k := size
		if rem := b.N - i; rem < k {
			k = rem
		}
		ops := make([]BatchOp, k)
		for j := range ops {
			seed++
			rel := rels[seed%int64(len(rels))]
			ops[j] = BatchOp{Rel: rel, Row: durableRow(sch, rel, seed)}
		}
		if err := insert(ops); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDurableInsert(b *testing.B) {
	for _, mode := range []struct {
		name    string
		noFsync bool
	}{{"sync", false}, {"nosync", true}} {
		for _, size := range []int{1, 64, 256} {
			b.Run(fmt.Sprintf("%s/batch=%d", mode.name, size), func(b *testing.B) {
				ds, rels := durableStarStore(b, mode.noFsync)
				batchInsertLoop(b, ds.schema, rels, size, ds.InsertBatch)
			})
		}
	}
}

// BenchmarkMemoryInsertBaseline is the in-memory twin of
// BenchmarkDurableInsert: the ratio between the two is the durability tax
// (the acceptance bar is ≤5× at batch ≥ 64).
func BenchmarkMemoryInsertBaseline(b *testing.B) {
	for _, size := range []int{1, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			sch := starSchema(b, 4, 3)
			cs, err := sch.OpenConcurrentStore()
			if err != nil {
				b.Fatal(err)
			}
			batchInsertLoop(b, sch, sch.Relations(), size, cs.InsertBatch)
		})
	}
}

func BenchmarkGroupCommit(b *testing.B) {
	for _, mode := range []struct {
		name    string
		noFsync bool
	}{{"sync", false}, {"nosync", true}} {
		b.Run(mode.name, func(b *testing.B) {
			ds, rels := durableStarStore(b, mode.noFsync)
			sch := ds.schema
			var seed atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					s := seed.Add(1)
					rel := rels[s%int64(len(rels))]
					if err := ds.Insert(rel, durableRow(sch, rel, s)); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			ws := ds.WAL()
			if ws.Syncs > 0 {
				b.ReportMetric(float64(ws.Records)/float64(ws.Syncs), "records/fsync")
			}
		})
	}
}

func BenchmarkEngineSnapshot(b *testing.B) {
	e, s := engineWorkload(b, workload.ShapeStar)
	n := s.Size()
	for i := 0; i < 5000; i++ {
		scheme := i % n
		if err := e.Insert(scheme, funcTuple(s, scheme, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := e.Snapshot(); st.TupleCount() != 5000 {
			b.Fatal("bad snapshot")
		}
	}
}

// --- E7: window queries ---------------------------------------------------
//
// The claim: for an independent schema the window function is a per-relation
// computation over a lock-free snapshot, so read throughput scales with
// cores (run with -cpu 1,4,8) even while a writer mutates the store.

// windowBenchStore opens a preloaded university store.
func windowBenchStore(b *testing.B, rows int) *ConcurrentStore {
	b.Helper()
	cs, err := MustParse("CT(C,T); CS(C,S); CHR(C,H,R)", "C -> T; C H -> R").OpenConcurrentStore()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		c := fmt.Sprintf("c%d", i)
		if err := cs.Insert("CT", map[string]string{"C": c, "T": "t" + c}); err != nil {
			b.Fatal(err)
		}
		if err := cs.Insert("CS", map[string]string{"C": c, "S": "s" + c}); err != nil {
			b.Fatal(err)
		}
	}
	return cs
}

// BenchmarkWindowQueryParallel measures read-only window throughput: every
// query after the first reuses the cached snapshot and the cached plan, so
// parallel readers share immutable data and never touch an engine state
// lock.
func BenchmarkWindowQueryParallel(b *testing.B) {
	cs := windowBenchStore(b, 500)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := cs.Window("S", "T"); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkWindowQueryMixed runs parallel readers against one background
// writer, the contended regime the snapshot cache is designed for: each
// write invalidates the cache once, and all readers between two writes
// share the same cut. The writer toggles a single row so the store size —
// and therefore the per-query work — stays constant across b.N.
func BenchmarkWindowQueryMixed(b *testing.B) {
	cs := windowBenchStore(b, 500)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		row := map[string]string{"C": "c_toggle", "T": "t_toggle"}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := cs.Insert("CT", row); err != nil {
				b.Error(err)
				return
			}
			if _, err := cs.Delete("CT", row); err != nil {
				b.Error(err)
				return
			}
		}
	}()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := cs.Window("S", "T"); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}

// BenchmarkWindowPlanCached measures the steady-state floor of the read
// path: every plan is warmed first, and the store is empty and unchanging,
// so each timed query is a plan-cache hit over a reused snapshot — the
// cost the two caches buy down to.
func BenchmarkWindowPlanCached(b *testing.B) {
	sets := [][]string{{"C", "T"}, {"C", "S"}, {"S", "T"}, {"C", "H", "R"}, {"C", "S", "T"}}
	cs := windowBenchStore(b, 0)
	for _, s := range sets {
		if _, err := cs.Window(s...); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cs.Window(sets[i%len(sets)]...); err != nil {
			b.Fatal(err)
		}
	}
}
