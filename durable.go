package indep

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"indep/internal/engine"
	"indep/internal/obs"
	"indep/internal/relation"
	"indep/internal/wal"
)

// ErrDurability wraps write errors that mean the in-memory admission
// succeeded but the write-ahead log could not make it durable (fsync
// failure, closed or failed log). It is a server-side fault, not a verdict
// on the row: callers should treat the store as failed and re-open it.
var ErrDurability = errors.New("indep: durability failure")

// DurabilityFailed reports whether an error is a durability failure.
func DurabilityFailed(err error) bool { return errors.Is(err, ErrDurability) }

// DurableStore is a ConcurrentStore backed by a write-ahead log and
// snapshot checkpoints: every acknowledged write survives a crash, and
// OpenDurableStore recovers the exact pre-crash state.
//
// Durability rides on the paper's main theorem. Because admission for an
// independent schema is a local O(|F_i|) decision, the redo log needs only
// the admitted (relation, tuple) pairs: recovery replays them through the
// same per-relation guards — concurrently correct, never re-running a
// global chase — and the recovered state passes the same local-consistency
// invariants as a live one. Non-independent schemas work too; their
// records replay through the serialized chase, which is the same honest
// cost they pay online.
//
// All ConcurrentStore methods are inherited and remain safe for concurrent
// use; writes return only after their log records are durable (per the
// configured sync mode).
type DurableStore struct {
	*ConcurrentStore
	dir    string
	log    *wal.Log
	unlock func() // releases the data-directory lock

	logger *slog.Logger  // nil disables structured commit/checkpoint logging
	slow   time.Duration // commits waiting at least this long are logged

	commitWait obs.Histogram // commit-to-durable wait, ns
	ckptDur    obs.Histogram // checkpoint wall time, ns
	ckptBytes  obs.Histogram // encoded checkpoint size
	ckptCount  obs.Counter   // checkpoints taken

	mu       sync.Mutex // serializes Checkpoint and Close
	closed   bool
	recovery RecoveryStats
}

// DurableOptions tunes OpenDurableStore. The zero value is the safe
// default: fsync on every commit group, 16 MiB segments.
type DurableOptions struct {
	// NoFsync trades power-loss durability for speed: records are written
	// but never fsynced. Acknowledged writes still survive a process
	// crash.
	NoFsync bool
	// SegmentBytes overrides the segment rotation threshold.
	SegmentBytes int64
	// Logger, when set, receives structured records for recovery,
	// checkpoints, traced commits (the fsync ack carries the request's
	// trace ID), and slow commits.
	Logger *slog.Logger
	// SlowCommit logs commits whose durability wait meets the threshold
	// (0 disables). The same threshold drives the engine's slow-operation
	// log when the caller wires one (see ConcurrentStore.SetTelemetry).
	SlowCommit time.Duration
}

// RecoveryStats reports what recovery-on-open found.
type RecoveryStats struct {
	CheckpointSeq    uint64        // 0 when no checkpoint was loaded
	CheckpointTuples int           // tuples restored from the checkpoint
	Segments         int           // log segments scanned
	Records          int           // committed records replayed
	TruncatedBytes   int64         // torn-tail bytes removed from the final segment
	Skipped          int           // records the engine re-rejected (corruption)
	Duration         time.Duration // wall time from open to ready
}

// OpenDurableStore opens (or creates) a durable maintained database in
// dir. On open it recovers: the latest checkpoint is loaded and
// re-admitted through the engine, the write-ahead log after it is
// replayed, and a torn tail left by a crash is detected by CRC and
// truncated. Only then does the store accept writes, appending every
// commit to the log via a group-commit writer that coalesces concurrent
// fsyncs.
func (s *Schema) OpenDurableStore(dir string, opts DurableOptions) (*DurableStore, error) {
	openStart := time.Now()
	cs, err := s.OpenConcurrentStore()
	if err != nil {
		return nil, err
	}
	eng := cs.eng
	// Exclusive directory lock (released on Close or process death): two
	// live stores interleaving one WAL directory would fork its history.
	unlock, err := wal.LockDir(dir)
	if err != nil {
		return nil, err
	}
	ok := false
	defer func() {
		if !ok {
			unlock()
		}
	}()
	ds := &DurableStore{
		ConcurrentStore: cs,
		dir:             dir,
		unlock:          unlock,
		logger:          opts.Logger,
		slow:            opts.SlowCommit,
	}

	// Phase 1: checkpoint. Dictionary bindings restore to their exact
	// values; tuples re-admit through the guards as one atomic batch, so a
	// checkpoint that somehow encodes an inconsistent state is rejected
	// here rather than served.
	ck, err := wal.LatestCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	fromSeq := uint64(0)
	if ck != nil {
		if ck.NumSchemes() != s.s.Size() {
			return nil, fmt.Errorf("indep: checkpoint has %d relations, schema has %d", ck.NumSchemes(), s.s.Size())
		}
		for _, e := range ck.Dict {
			if err := eng.Dict().Restore(e.Value, e.Name); err != nil {
				return nil, fmt.Errorf("indep: corrupt checkpoint dictionary: %w", err)
			}
		}
		var ops []engine.Op
		for i := 0; i < ck.NumSchemes(); i++ {
			want := s.s.Attrs(i).Len()
			if ck.RowCount(i) > 0 && ck.Arity(i) != want {
				return nil, fmt.Errorf("indep: checkpoint tuple arity %d in %s (want %d)", ck.Arity(i), s.s.Name(i), want)
			}
			for r := 0; r < ck.RowCount(i); r++ {
				ops = append(ops, engine.Op{Scheme: i, Tuple: ck.AppendRow(make(relation.Tuple, 0, want), i, r)})
			}
		}
		total := len(ops)
		// Re-admit in MaxBatchOps chunks. Each chunk's trial state is a
		// subset of the checkpointed (consistent) state, and SAT is closed
		// under subsets, so chunking cannot turn a good checkpoint away.
		for len(ops) > 0 {
			k := min(len(ops), engine.MaxBatchOps)
			if err := eng.Apply(engine.Commit{Ops: ops[:k]}); err != nil {
				return nil, fmt.Errorf("indep: checkpoint state fails admission: %w", err)
			}
			ops = ops[k:]
		}
		fromSeq = ck.Seq
		ds.recovery.CheckpointSeq = ck.Seq
		ds.recovery.CheckpointTuples = total
	}

	// Phase 2: log replay. Records re-admit through the guards; a record
	// the engine rejects is counted and skipped (the log promised it was
	// admissible once — a reject means the surrounding bytes lied).
	rs, err := wal.Replay(dir, fromSeq, func(rec wal.Record) error {
		switch rec.Kind {
		case wal.KindIntern:
			if err := eng.Dict().Restore(rec.Value, rec.Name); err != nil {
				return fmt.Errorf("%w: %v", wal.ErrSkip, err)
			}
			return nil
		default:
			c := engine.Commit{Ops: make([]engine.Op, len(rec.Ops)), Delete: rec.Kind == wal.KindDelete}
			for i, op := range rec.Ops {
				if op.Rel < 0 || op.Rel >= s.s.Size() {
					return fmt.Errorf("%w: record addresses scheme %d", wal.ErrSkip, op.Rel)
				}
				c.Ops[i] = engine.Op{Scheme: op.Rel, Tuple: op.Tuple}
			}
			if err := eng.Apply(c); err != nil {
				if Rejected(err) {
					return fmt.Errorf("%w: %v", wal.ErrSkip, err)
				}
				return err
			}
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	ds.recovery.Segments = rs.Segments
	ds.recovery.Records = rs.Records
	ds.recovery.TruncatedBytes = rs.TruncatedBytes
	ds.recovery.Skipped = rs.Skipped

	// Phase 3: go live. The log opens a fresh segment; the dictionary hook
	// journals new bindings under the shard lock (so a binding is durable
	// no later than its first use) and the engine hook journals every
	// commit under the relation locks (so per-relation log order equals
	// admission order).
	walOpts := wal.Options{SegmentBytes: opts.SegmentBytes}
	if opts.NoFsync {
		walOpts.Sync = wal.SyncNever
	}
	log, err := wal.OpenLog(dir, walOpts)
	if err != nil {
		return nil, err
	}
	ds.log = log
	eng.Dict().SetInternHook(func(v relation.Value, name string) {
		log.Enqueue(wal.Intern(v, name))
	})
	eng.SetCommitHook(func(c engine.Commit) func() error {
		var recs []wal.Record
		switch {
		case c.Delete:
			// Delete records are single-op; a multi-op delete commit (none
			// exist today, but the Commit type allows it) becomes one
			// contiguous run of records under a single wait.
			recs = make([]wal.Record, len(c.Ops))
			for i, op := range c.Ops {
				recs[i] = wal.Delete(op.Scheme, op.Tuple)
			}
		case len(c.Ops) == 1:
			recs = []wal.Record{wal.Insert(c.Ops[0].Scheme, c.Ops[0].Tuple)}
		default:
			ops := make([]wal.TupleOp, len(c.Ops))
			for i, op := range c.Ops {
				ops[i] = wal.TupleOp{Rel: op.Scheme, Tuple: op.Tuple}
			}
			recs = []wal.Record{wal.Batch(ops)}
		}
		// On a traced request c.Span is the engine-operation span; the WAL
		// append and the fsync ack become its children, so the trace shows
		// where a durable write's time went. All span calls are nil-safe,
		// so untraced commits pay nothing here.
		asp := c.Span.StartChild("wal.append")
		t := log.Append(recs...)
		if asp.Recording() {
			asp.SetInt("records", int64(len(recs)))
			asp.SetInt("wal_bytes", int64(t.Bytes()))
		}
		asp.End()
		trace, nops := c.Trace, len(c.Ops)
		fsp := c.Span.StartChild("wal.fsync")
		start := time.Now()
		return func() error {
			err := t.Wait()
			d := time.Since(start)
			if fsp.Recording() {
				fsp.SetInt("wait_ns", d.Nanoseconds())
				if err != nil {
					fsp.SetAttr("error", err.Error())
				}
			}
			fsp.End()
			ds.commitWait.Observe(int64(d))
			ds.noteCommit(trace, nops, d, err)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrDurability, err)
			}
			return nil
		}
	})
	ds.recovery.Duration = time.Since(openStart)
	if opts.Logger != nil {
		opts.Logger.Info("store recovered",
			"dir", dir,
			"checkpoint_seq", ds.recovery.CheckpointSeq,
			"checkpoint_tuples", ds.recovery.CheckpointTuples,
			"segments", ds.recovery.Segments,
			"records", ds.recovery.Records,
			"truncated_bytes", ds.recovery.TruncatedBytes,
			"skipped", ds.recovery.Skipped,
			"duration", ds.recovery.Duration)
	}
	ok = true
	return ds, nil
}

// noteCommit emits the fsync-ack log line for traced commits (the end of a
// request's trace: the same ID the HTTP access log printed at ingress) and
// a warning for commits whose durability wait met the slow threshold.
func (ds *DurableStore) noteCommit(trace string, ops int, d time.Duration, err error) {
	if ds.logger == nil {
		return
	}
	if ds.slow > 0 && d >= ds.slow {
		args := []any{"ops", ops, "wait", d}
		if trace != "" {
			args = append(args, "trace", trace)
		}
		if err != nil {
			args = append(args, "err", err)
		}
		ds.logger.Warn("slow commit", args...)
		return
	}
	if trace == "" {
		return
	}
	if err != nil {
		ds.logger.Error("commit failed", "trace", trace, "ops", ops, "wait", d, "err", err)
		return
	}
	ds.logger.Debug("commit durable", "trace", trace, "ops", ops, "wait", d)
}

// RegisterMetrics files the store's metric families with the registry: the
// engine's (per-relation counters and latency, query and chase telemetry),
// the write-ahead log's (fsync and write latency, group batching, segment
// depth), and the durability layer's own (commit wait, checkpoints,
// recovery).
func (ds *DurableStore) RegisterMetrics(r *obs.Registry) {
	ds.ConcurrentStore.RegisterMetrics(r)
	ds.log.RegisterMetrics(r)
	r.RegisterHistogram("indep_durable_commit_wait_seconds",
		"commit-to-durable wait (group-commit queue plus fsync)", 1e-9, &ds.commitWait)
	r.CounterFunc("indep_checkpoints_total",
		"checkpoints written", ds.ckptCount.Value)
	r.RegisterHistogram("indep_checkpoint_duration_seconds",
		"checkpoint wall time: snapshot, encode, fsync, truncate", 1e-9, &ds.ckptDur)
	r.RegisterHistogram("indep_checkpoint_bytes",
		"encoded checkpoint size", 1, &ds.ckptBytes)
	r.GaugeFunc("indep_recovery_replayed_records",
		"log records replayed by the last recovery", func() float64 { return float64(ds.recovery.Records) })
	r.GaugeFunc("indep_recovery_skipped_records",
		"records the last recovery re-rejected", func() float64 { return float64(ds.recovery.Skipped) })
	r.GaugeFunc("indep_recovery_duration_seconds",
		"wall time of the last recovery", ds.recovery.Duration.Seconds)
}

// Recovery reports what recovery-on-open found (zero stats for a fresh
// directory).
func (ds *DurableStore) Recovery() RecoveryStats { return ds.recovery }

// WAL returns a point-in-time view of the write-ahead log: segment depth,
// bytes of replay debt, append and fsync counts.
func (ds *DurableStore) WAL() wal.LogStats { return ds.log.Stats() }

// WALLatency returns snapshots of the write-ahead log's write-latency,
// fsync-latency, and records-per-commit-group histograms — the same data
// the registry exposes, for callers (like indepd's /stats) that want
// quantiles as JSON rather than an exposition scrape.
func (ds *DurableStore) WALLatency() (write, fsync, groupRecords HistSnapshot) {
	return ds.log.LatencyStats()
}

// CommitWaitStats returns a snapshot of the commit-to-durable wait
// histogram: how long Insert/InsertBatch/Delete callers blocked between
// the in-memory commit and the fsync ack.
func (ds *DurableStore) CommitWaitStats() HistSnapshot {
	return ds.commitWait.Snapshot()
}

// Checkpoint serializes a consistent snapshot of the store (state and
// dictionary) next to the log and truncates the segments it covers. The
// cut is exact: the log rotates at the snapshot point while every state
// lock is held, so the checkpoint plus the remaining segments always
// reproduce the current state. Concurrent writes proceed during the disk
// write; only the in-memory snapshot blocks them briefly.
func (ds *DurableStore) Checkpoint() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.closed {
		return fmt.Errorf("indep: store is closed")
	}
	start := time.Now()
	var seq uint64
	st := ds.eng.SnapshotWith(func() { seq = ds.log.Rotate() })
	size, err := wal.WriteCheckpoint(ds.dir, wal.NewCheckpoint(seq, st))
	if err != nil {
		return err
	}
	err = ds.log.RemoveBefore(seq)
	d := time.Since(start)
	ds.ckptCount.Inc()
	ds.ckptDur.Observe(int64(d))
	ds.ckptBytes.Observe(size)
	if ds.logger != nil {
		ds.logger.Info("checkpoint written", "seq", seq, "bytes", size, "duration", d)
	}
	return err
}

// Close flushes and closes the log. Writes after Close fail; the in-memory
// store remains readable.
func (ds *DurableStore) Close() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.closed {
		return nil
	}
	ds.closed = true
	err := ds.log.Close()
	ds.unlock()
	return err
}
