package indep

import (
	"fmt"
	"os"
	"strings"
)

// ParseDeclarations splits the declaration-file format shared by the indep
// and indepd commands into its schema and FD sources. One declaration per
// line; lines starting with '#' are comments:
//
//	schema: CT(C,T); CS(C,S); CHR(C,H,R)
//	fds: C -> T; C H -> R
//
// Repeated schema:/fds: lines accumulate.
func ParseDeclarations(src string) (schemaSrc, fdSrc string, err error) {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "" || strings.HasPrefix(line, "#"):
		case strings.HasPrefix(line, "schema:"):
			schemaSrc += strings.TrimPrefix(line, "schema:") + ";"
		case strings.HasPrefix(line, "fds:"):
			fdSrc += strings.TrimPrefix(line, "fds:") + ";"
		default:
			return "", "", fmt.Errorf("indep: cannot parse line %q", line)
		}
	}
	return schemaSrc, fdSrc, nil
}

// ParseFile reads a declaration file (see ParseDeclarations) and parses the
// schema it declares.
func ParseFile(path string) (*Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	schemaSrc, fdSrc, err := ParseDeclarations(string(data))
	if err != nil {
		return nil, err
	}
	return Parse(schemaSrc, fdSrc)
}
